package campaign

// Trained-agent memoization: Q-learning training is a sequential process
// whose episodes feed the next, so it cannot be cached as simulation jobs —
// it was the residual ~30s of a warm-cache paper suite. But a *finished*
// training run is a pure function of its inputs: the learning-instrumented
// module, the platform, the agent kind and hyper-parameters, the reward
// exponent, the episode count, the seed, the program arguments and the
// simulator knobs. TrainCell content-addresses the trained agent under a
// key derived from exactly those inputs and stores an inference-exact
// snapshot (rl.Snapshot) in the campaign store, so a warm-cache suite run
// skips training entirely; TrainCells fans independent cells out across
// workers the way Pool shards simulation jobs.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/rl"
	"astro/internal/sched"
	"astro/internal/sim"
)

// TrainSpec fully describes one training cell. Every field participates in
// the cache key (via Key) except Label.
type TrainSpec struct {
	Label    string
	Module   *ir.Module // the learning-instrumented binary
	PlatName string     // "" = DefaultPlatform
	OS       string     // OS policy by name, as in Job ("" or "gts")
	Agent    string     // "dqn" (default) or "tabular"
	DQN      rl.DQNConfig
	Gamma    float64 // reward exponent; 0 = the paper's 2.0
	Hipster  bool    // phase-blind variant (no program phases in the state)
	Episodes int     // 0 = sched.Train's default
	Seed     int64
	Args     []int64
	Opts     sim.Options // scalar knobs only; policies must be nil
}

// Key returns the cell's content address. Like Job.Key, it is a SHA-256
// over every input that can influence the trained agent.
func (ts *TrainSpec) Key() (string, error) {
	if ts.Opts.OS != nil || ts.Opts.Actuator != nil || ts.Opts.Hybrid != nil {
		return "", fmt.Errorf("campaign: train spec %q: set policies by name, not in Opts", ts.Label)
	}
	opts := ts.Opts
	opts.Seed, opts.Args = 0, nil
	fp, err := opts.Fingerprint()
	if err != nil {
		return "", err
	}
	episodes := ts.Episodes
	if episodes == 0 {
		episodes = 12 // sched.Train's default
	}
	gamma := ts.Gamma
	if gamma == 0 {
		gamma = 2.0
	}
	agent := ts.Agent
	if agent == "" {
		agent = "dqn"
	}
	var sb strings.Builder
	sb.WriteString("astro-trained-agent-v1\n")
	sb.WriteString(ModuleHash(ts.Module))
	sb.WriteByte('\n')
	plat := ts.PlatName
	if plat == "" {
		plat = DefaultPlatform
	}
	sb.WriteString(plat)
	sb.WriteByte('\n')
	sb.WriteString(ts.OS)
	sb.WriteByte('\n')
	sb.WriteString(agent)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%+v\n", ts.DQN)
	fmt.Fprintf(&sb, "gamma=%g hipster=%t episodes=%d seed=%d\n", gamma, ts.Hipster, episodes, ts.Seed)
	for _, a := range ts.Args {
		sb.WriteString(strconv.FormatInt(a, 10))
		sb.WriteByte(',')
	}
	sb.WriteByte('\n')
	sb.WriteString(fp)
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:]), nil
}

// Trained is a training cell's outcome.
type Trained struct {
	Agent    rl.Agent
	Visits   []rl.State
	Stats    []sched.EpisodeStat
	CacheHit bool
}

// trainedSnapshot is the stored byte form of a finished training cell.
type trainedSnapshot struct {
	Agent  *rl.Snapshot        `json:"agent"`
	Visits []rl.State          `json:"visits"`
	Stats  []sched.EpisodeStat `json:"stats"`
}

// restoreTrained decodes stored training-cell bytes and restores the
// agent. It is the single gate between snapshot bytes and a usable
// Trained — the warm-cache path, the queue's train-result validation, the
// agent exchange and agent-keyed jobs all trust exactly this check.
func restoreTrained(data []byte) (*Trained, error) {
	var snap trainedSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("campaign: not a trained-agent snapshot: %w", err)
	}
	if snap.Agent == nil {
		return nil, fmt.Errorf("campaign: trained-agent snapshot has no agent")
	}
	agent, err := snap.Agent.Restore()
	if err != nil {
		return nil, fmt.Errorf("campaign: trained-agent snapshot does not restore: %w", err)
	}
	return &Trained{Agent: agent, Visits: snap.Visits, Stats: snap.Stats}, nil
}

// TrainCell trains one cell, consulting store first (nil store trains
// fresh). A cache hit restores an inference-exact agent: Best/Q — and
// therefore extracted policies and hybrid decisions — are bit-identical to
// the freshly trained agent's, so warm and cold suite runs produce
// byte-identical results.
func TrainCell(store ResultStore, ts *TrainSpec) (*Trained, error) {
	if ts.Module == nil {
		return nil, fmt.Errorf("campaign: train spec %q has no module", ts.Label)
	}
	key, err := ts.Key()
	if err != nil {
		return nil, err
	}
	if store != nil {
		if data, ok := store.Get(key); ok {
			if tr, err := restoreTrained(data); err == nil {
				tr.CacheHit = true
				cTrainHit.Inc()
				return tr, nil
			}
			// A corrupt snapshot falls through to fresh training, which
			// overwrites it.
		}
	}

	plat, err := hw.ByName(ts.platformName())
	if err != nil {
		return nil, err
	}
	opts := ts.Opts
	if opts.OS, err = buildOS(ts.OS); err != nil {
		return nil, err
	}
	trainStart := time.Now()
	tr, err := sched.TrainAstro(ts.Module, plat, ts.Agent, ts.DQN, ts.Hipster, ts.Gamma, sched.TrainOptions{
		Episodes: ts.Episodes,
		Seed:     ts.Seed,
		Args:     ts.Args,
		SimOpts:  opts,
	})
	if err != nil {
		cTrainErr.Inc()
		return nil, fmt.Errorf("campaign: train %q: %w", ts.Label, err)
	}
	cTrainFresh.Inc()
	hTrain.Observe(time.Since(trainStart).Seconds())
	out := &Trained{Agent: tr.Agent, Visits: tr.Visits, Stats: tr.Stats}
	if store != nil {
		if data, err := snapshotBytes(out); err == nil && data != nil {
			// Best effort, like Pool's cache fill: a failed Put only costs
			// future memoization.
			_ = store.Put(key, data)
		}
	}
	return out, nil
}

// snapshotBytes serializes a finished training cell into its canonical
// stored byte form. A nil, nil return means the agent kind cannot be
// snapshotted (usable in-process, just not cacheable or wireable).
func snapshotBytes(tr *Trained) ([]byte, error) {
	var snap trainedSnapshot
	switch a := tr.Agent.(type) {
	case *rl.DQN:
		snap.Agent = a.Snapshot()
	case *rl.Tabular:
		snap.Agent = a.Snapshot()
	default:
		return nil, nil
	}
	snap.Visits = tr.Visits
	snap.Stats = tr.Stats
	return json.Marshal(&snap)
}

func (ts *TrainSpec) platformName() string {
	if ts.PlatName == "" {
		return DefaultPlatform
	}
	return ts.PlatName
}

// TrainCells trains independent cells on workers goroutines with the same
// deterministic index sharding as Pool.Run. Each cell is internally
// sequential (episodes feed the next), but cells share nothing, so the
// result set is identical for any worker count — the training counterpart
// of the -j1 ≡ -j8 campaign invariant.
func TrainCells(store ResultStore, specs []*TrainSpec, workers int) ([]*Trained, error) {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(specs) && len(specs) > 0 {
		workers = len(specs)
	}
	outs := make([]*Trained, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(specs); i += workers {
				outs[i], errs[i] = TrainCell(store, specs[i])
			}
		}(w)
	}
	wg.Wait()
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("cell %d (%s): %w", i, specs[i].Label, err))
		}
	}
	return outs, errors.Join(joined...)
}

package campaign

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Store is the content-addressed result store: canonical result bytes keyed
// by job content hash. Reads hit an in-memory tier first, then (when the
// store was opened with a directory) an on-disk tier laid out as
// dir/<key[:2]>/<key>.json — the two-character fan-out keeps directories
// small for hundred-thousand-job campaigns. The disk tier is what makes a
// warm re-run of a campaign across process restarts perform zero fresh
// simulations.
//
// Opened with a StoreConfig the store is production-bounded: the disk
// tier holds at most MaxBytes of value bytes, evicting least-recently-
// used unpinned entries (the whole file — an entry is always either
// fully present or absent), and the memory tier becomes a byte-bounded
// hot cache instead of an unbounded map. Eviction is safe by
// construction: a content-addressed entry can only be absent (forcing a
// recomputation that produces the identical bytes) or byte-for-byte
// correct, never stale or torn (DESIGN.md invariant 11). Pinned keys —
// see PinLedger — are skipped by eviction, which is how trained-agent
// snapshots referenced by live campaigns survive any pressure.
type Store struct {
	mu  sync.RWMutex
	mem map[string][]byte // unbounded memory tier (nil when hot is set)
	hot *hotCache         // bounded memory tier (may be shared across shards)
	dir string

	pins *PinLedger // never nil; shards share the parent store's

	// Disk-tier accounting (dir != ""). disk maps every key known to be
	// on disk to its LRU element; for unbounded stores it fills lazily
	// (Put, Get disk hits, Stat probes), for bounded ones it is seeded
	// by a full scan at open so the cap holds across restarts.
	maxBytes  int64
	diskBytes int64
	disk      map[string]*list.Element
	lru       *list.List      // front = most recently used; values are *diskEnt
	writing   map[string]bool // keys with a value write in flight (dedup without holding mu across fsync)

	// onEvict, when set, observes every disk-tier eviction after the file
	// is removed; the sharded store uses it to keep its key index honest.
	onEvict func(key string)

	// publish marks a standalone disk store that owns the store-wide
	// occupancy gauges; shards leave it false (their parent publishes the
	// summed view from noteOccupancy instead).
	publish bool

	hits, misses, puts   uint64
	diskWrites, putNoops uint64
	evictions            uint64
}

type diskEnt struct {
	key  string
	size int64
}

// NewMemStore builds a memory-only store.
func NewMemStore() *Store {
	return &Store{mem: map[string][]byte{}, pins: NewPinLedger()}
}

// NewStore builds an unbounded store backed by dir (created if missing);
// an empty dir means memory-only. A directory holding a *sharded* layout
// is refused: opening it flat would miss every stored key, silently
// invalidating the whole cache — the caller should reopen with
// NewShardedStore (-shards).
func NewStore(dir string) (*Store, error) {
	return NewStoreWith(dir, StoreConfig{})
}

// NewStoreWith is NewStore with byte caps. Caps require a disk tier: a
// memory-only store's map is authoritative storage, and evicting from it
// would lose results rather than spill them.
func NewStoreWith(dir string, cfg StoreConfig) (*Store, error) {
	var hot *hotCache
	if cfg.bounded() {
		hot = newHotCache(cfg.effHotBytes())
	}
	return newStoreTier(dir, cfg, hot, nil)
}

// newStoreTier is the shared constructor: a standalone store owns its
// hot cache and pin ledger; a shard receives both from its parent so one
// cache fronts all shards and one pin protects a key wherever it lands.
func newStoreTier(dir string, cfg StoreConfig, hot *hotCache, pins *PinLedger) (*Store, error) {
	if dir == "" && cfg.bounded() {
		return nil, fmt.Errorf("campaign: store caps need a disk tier (-cache); a memory-only store cannot evict without losing results")
	}
	s := NewMemStore()
	if pins != nil {
		s.pins = pins
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: store dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, shardManifestName)); err == nil {
		return nil, fmt.Errorf("campaign: %s holds a sharded store (%s present); reopen it with the same -shards value it was created with", dir, shardManifestName)
	}
	s.dir = dir
	s.disk = map[string]*list.Element{}
	s.lru = list.New()
	s.writing = map[string]bool{}
	s.publish = pins == nil
	if cfg.bounded() {
		s.maxBytes = cfg.MaxBytes
		s.mem = nil
		s.hot = hot
		if err := s.loadDiskTier(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// loadDiskTier seeds the disk-tier accounting from the files already
// present: every <2-hex>/<key>.json under dir, ordered oldest-modified
// first so the LRU starts with a sensible cold end. Bounded stores need
// this at open — the cap must hold over what a previous process wrote —
// and it immediately evicts down to the cap if the directory arrives
// over it (a cap lowered between runs).
func (s *Store) loadDiskTier() error {
	type onDisk struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []onDisk
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("campaign: store scan: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || len(name) != 2 {
			continue
		}
		if _, err := strconv.ParseUint(name, 16, 8); err != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		for _, f := range files {
			fname := f.Name()
			if f.IsDir() || filepath.Ext(fname) != ".json" {
				continue
			}
			key := fname[:len(fname)-len(".json")]
			if len(key) <= 2 || key[:2] != name {
				continue
			}
			fi, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, onDisk{key: key, size: fi.Size(), mtime: fi.ModTime()})
		}
	}
	// Oldest first, so the first PushFront calls land at the cold end.
	for i := 0; i < len(found); i++ {
		for j := i + 1; j < len(found); j++ {
			if found[j].mtime.Before(found[i].mtime) {
				found[i], found[j] = found[j], found[i]
			}
		}
	}
	s.mu.Lock()
	for _, f := range found {
		s.trackLocked(f.key, f.size)
	}
	victims := s.evictLocked()
	s.publishLocked()
	s.mu.Unlock()
	s.notifyEvicted(victims)
	return nil
}

// memGet reads the memory tier (whichever kind is configured).
func (s *Store) memGet(key string) ([]byte, bool) {
	if s.hot != nil {
		return s.hot.get(key)
	}
	s.mu.RLock()
	data, ok := s.mem[key]
	s.mu.RUnlock()
	return data, ok
}

// memPut fills the memory tier.
func (s *Store) memPut(key string, data []byte) {
	if s.hot != nil {
		s.hot.put(key, data)
		return
	}
	s.mu.Lock()
	s.mem[key] = data
	s.mu.Unlock()
}

// Get returns the stored canonical result bytes for key, if present.
func (s *Store) Get(key string) ([]byte, bool) {
	start := time.Now()
	defer func() { hStoreGet.Observe(time.Since(start).Seconds()) }()
	if data, ok := s.memGet(key); ok {
		s.mu.Lock()
		s.hits++
		if s.disk != nil {
			s.touchLocked(key)
		}
		s.mu.Unlock()
		cStoreHits.Inc()
		return data, true
	}
	if s.dir != "" && len(key) > 2 {
		if data, err := os.ReadFile(s.path(key)); err == nil {
			s.memPut(key, data)
			s.mu.Lock()
			s.hits++
			if _, tracked := s.disk[key]; tracked {
				s.touchLocked(key)
			} else {
				// An unbounded store discovering a prior process's entry.
				s.trackLocked(key, int64(len(data)))
				s.publishLocked()
			}
			s.mu.Unlock()
			cStoreHits.Inc()
			return data, true
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	cStoreMisses.Inc()
	return nil, false
}

// Put stores canonical result bytes under key in memory and, when
// configured, on disk. The disk write (writeFileAtomic) is crash-safe: the
// bytes are written to a temporary file which is fsynced *before* the
// atomic rename, and the containing directory is fsynced after, so a
// killed or power-cut run can never leave a visible-but-truncated entry.
// (Rename-without-fsync can be reordered by the filesystem so the name
// appears before the data blocks; a truncated-but-parseable JSON prefix
// would then poison warm-cache determinism, which trusts stored bytes as
// canonical.)
//
// A Put of a key already on disk is a no-op on the disk tier: the store
// is content-addressed, so same key ⇒ same bytes, and rewriting them
// would only churn a temp file, an fsync and a rename for nothing. One
// unique key costs exactly one disk write (TestStorePutSingleDiskWrite),
// and the skip counts into astro_store_put_noops_total.
func (s *Store) Put(key string, data []byte) error {
	start := time.Now()
	defer func() { hStorePut.Observe(time.Since(start).Seconds()) }()
	cStorePuts.Inc()
	s.memPut(key, data)
	s.mu.Lock()
	s.puts++
	if s.dir == "" || len(key) <= 2 {
		s.mu.Unlock()
		return nil
	}
	if _, ok := s.disk[key]; ok || s.writing[key] {
		// Already durable (or another goroutine is making it so).
		if ok {
			s.touchLocked(key)
		}
		s.putNoops++
		s.mu.Unlock()
		cStorePutNoops.Inc()
		return nil
	}
	if s.maxBytes > 0 && int64(len(data)) > s.maxBytes && !s.pins.Pinned(key) {
		// The value alone exceeds this tier's cap: banking it would
		// evict every peer in the shard and the value would still have
		// to go — a whole shard of cache destroyed for nothing. Refuse
		// it up front (it stays in the memory tier for this process and
		// recomputes like any evicted key); a *pinned* oversized value
		// is banked regardless, holding the store over cap exactly as a
		// pinned eviction survivor would (Occupancy/readyz report it).
		s.evictions++
		s.mu.Unlock()
		cStoreEvictions.Add(1)
		return nil
	}
	s.writing[key] = true
	s.mu.Unlock()

	p := s.path(key)
	// An unbounded store does not scan at open, so a prior process's
	// entry surfaces here: one Stat instead of a rewrite.
	if fi, err := os.Stat(p); err == nil {
		s.mu.Lock()
		delete(s.writing, key)
		s.trackLocked(key, fi.Size())
		s.putNoops++
		s.publishLocked()
		s.mu.Unlock()
		cStorePutNoops.Inc()
		return nil
	}
	var werr error
	if werr = os.MkdirAll(filepath.Dir(p), 0o755); werr == nil {
		werr = writeFileAtomic(p, data)
	}
	s.mu.Lock()
	delete(s.writing, key)
	var victims []string
	if werr == nil {
		s.diskWrites++
		s.trackLocked(key, int64(len(data)))
		victims = s.evictLocked()
		s.publishLocked()
	}
	s.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("campaign: store put: %w", werr)
	}
	cStoreDiskWrites.Inc()
	s.notifyEvicted(victims)
	return nil
}

// trackLocked records key as on-disk with the given size (moving it to
// the hot end if already tracked) and publishes the occupancy gauges.
func (s *Store) trackLocked(key string, size int64) {
	if e, ok := s.disk[key]; ok {
		s.lru.MoveToFront(e)
		ent := e.Value.(*diskEnt)
		s.diskBytes += size - ent.size
		ent.size = size
		return
	}
	s.disk[key] = s.lru.PushFront(&diskEnt{key: key, size: size})
	s.diskBytes += size
}

// publishLocked refreshes the store-wide occupancy gauges (standalone
// disk stores only; a sharded store publishes its summed view itself).
func (s *Store) publishLocked() {
	if !s.publish {
		return
	}
	gStoreDiskBytes.Set(float64(s.diskBytes))
	gStoreDiskKeys.Set(float64(len(s.disk)))
}

// diskUsage reports the disk tier's current bytes and key count.
func (s *Store) diskUsage() (bytes int64, keys int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diskBytes, len(s.disk)
}

// diskKeys returns the keys currently tracked on disk. For bounded
// stores this is exact (seeded by the open-time scan); the sharded store
// rebuilds its per-shard index from it.
func (s *Store) diskKeys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.disk))
	for k := range s.disk {
		out = append(out, k)
	}
	return out
}

// touchLocked marks key most-recently-used.
func (s *Store) touchLocked(key string) {
	if e, ok := s.disk[key]; ok {
		s.lru.MoveToFront(e)
	}
}

// evictLocked removes least-recently-used unpinned entries until the
// disk tier fits its cap, returning the evicted keys (the caller runs
// onEvict outside the lock). Pinned entries are skipped in place — a
// clock-style pass — so a store whose pinned bytes exceed the cap simply
// stays over it (and reports so through Occupancy/readyz) rather than
// evicting a snapshot a live campaign depends on. File removal happens
// inside the lock-held walk but is a plain unlink (no fsync); a
// concurrent Get racing the unlink either reads the full old bytes or
// misses — both correct.
func (s *Store) evictLocked() []string {
	if s.maxBytes <= 0 || s.diskBytes <= s.maxBytes {
		return nil
	}
	var victims []string
	for e := s.lru.Back(); e != nil && s.diskBytes > s.maxBytes; {
		ent := e.Value.(*diskEnt)
		prev := e.Prev()
		if s.pins.Pinned(ent.key) {
			e = prev
			continue
		}
		os.Remove(s.path(ent.key))
		s.lru.Remove(e)
		delete(s.disk, ent.key)
		s.diskBytes -= ent.size
		s.evictions++
		victims = append(victims, ent.key)
		e = prev
	}
	cStoreEvictions.Add(uint64(len(victims)))
	return victims
}

// notifyEvicted runs the eviction observers outside s.mu: the hot cache
// drops its copy (evicted ⇒ the next Get recomputes, crisply) and the
// sharded store prunes its key index.
func (s *Store) notifyEvicted(keys []string) {
	for _, key := range keys {
		if s.hot != nil {
			s.hot.drop(key)
		}
		if s.onEvict != nil {
			s.onEvict(key)
		}
	}
}

// Occupancy snapshots the disk-tier accounting (Occupant interface).
func (s *Store) Occupancy() Occupancy {
	s.mu.RLock()
	occ := Occupancy{
		DiskBytes:  s.diskBytes,
		CapBytes:   s.maxBytes,
		DiskKeys:   len(s.disk),
		DiskWrites: s.diskWrites,
		PutNoops:   s.putNoops,
		Evictions:  s.evictions,
	}
	for _, key := range s.pins.PinnedKeys() {
		if e, ok := s.disk[key]; ok {
			occ.PinnedBytes += e.Value.(*diskEnt).size
			occ.PinnedKeys++
		}
	}
	s.mu.RUnlock()
	if s.hot != nil {
		occ.HotBytes = s.hot.size()
		occ.HotCapBytes = s.hot.max
	}
	return occ
}

// Pin and Unpin implement PinStore on the ledger this store consults
// during eviction.
func (s *Store) Pin(key string)   { s.pins.Pin(key) }
func (s *Store) Unpin(key string) { s.pins.Unpin(key) }

// writeFileAtomic writes data via temp-file + fsync + rename + directory
// sync — the one crash-safety discipline shared by result values, the
// sharded store's manifest, and compaction's keys.idx rewrite.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	syncDir(dir)
	return nil
}

// syncDir persists a directory entry (the rename) to stable storage. Best
// effort: a failure only weakens crash durability, never correctness — the
// entry is either fully present or absent after recovery either way.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Len returns the number of results resident in the memory tier.
func (s *Store) Len() int {
	if s.hot != nil {
		return s.hot.lenKeys()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Stats returns cumulative hit/miss/put counters.
func (s *Store) Stats() (hits, misses, puts uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits, s.misses, s.puts
}

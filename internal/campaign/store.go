package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Store is the content-addressed result store: canonical result bytes keyed
// by job content hash. Reads hit an in-memory tier first, then (when the
// store was opened with a directory) an on-disk tier laid out as
// dir/<key[:2]>/<key>.json — the two-character fan-out keeps directories
// small for hundred-thousand-job campaigns. The disk tier is what makes a
// warm re-run of a campaign across process restarts perform zero fresh
// simulations.
type Store struct {
	mu  sync.RWMutex
	mem map[string][]byte
	dir string

	hits, misses, puts uint64
}

// NewMemStore builds a memory-only store.
func NewMemStore() *Store {
	return &Store{mem: map[string][]byte{}}
}

// NewStore builds a store backed by dir (created if missing); an empty dir
// means memory-only. A directory holding a *sharded* layout is refused:
// opening it flat would miss every stored key, silently invalidating the
// whole cache — the caller should reopen with NewShardedStore (-shards).
func NewStore(dir string) (*Store, error) {
	s := NewMemStore()
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: store dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, shardManifestName)); err == nil {
		return nil, fmt.Errorf("campaign: %s holds a sharded store (%s present); reopen it with the same -shards value it was created with", dir, shardManifestName)
	}
	s.dir = dir
	return s, nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the stored canonical result bytes for key, if present.
func (s *Store) Get(key string) ([]byte, bool) {
	start := time.Now()
	defer func() { hStoreGet.Observe(time.Since(start).Seconds()) }()
	s.mu.RLock()
	data, ok := s.mem[key]
	s.mu.RUnlock()
	if ok {
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
		cStoreHits.Inc()
		return data, true
	}
	if s.dir != "" && len(key) > 2 {
		if data, err := os.ReadFile(s.path(key)); err == nil {
			s.mu.Lock()
			s.mem[key] = data
			s.hits++
			s.mu.Unlock()
			cStoreHits.Inc()
			return data, true
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	cStoreMisses.Inc()
	return nil, false
}

// Put stores canonical result bytes under key in memory and, when
// configured, on disk. The disk write (writeFileAtomic) is crash-safe: the
// bytes are written to a temporary file which is fsynced *before* the
// atomic rename, and the containing directory is fsynced after, so a
// killed or power-cut run can never leave a visible-but-truncated entry.
// (Rename-without-fsync can be reordered by the filesystem so the name
// appears before the data blocks; a truncated-but-parseable JSON prefix
// would then poison warm-cache determinism, which trusts stored bytes as
// canonical.)
func (s *Store) Put(key string, data []byte) error {
	start := time.Now()
	defer func() { hStorePut.Observe(time.Since(start).Seconds()) }()
	cStorePuts.Inc()
	s.mu.Lock()
	s.mem[key] = data
	s.puts++
	s.mu.Unlock()
	if s.dir == "" || len(key) <= 2 {
		return nil
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("campaign: store put: %w", err)
	}
	if err := writeFileAtomic(p, data); err != nil {
		return fmt.Errorf("campaign: store put: %w", err)
	}
	return nil
}

// writeFileAtomic writes data via temp-file + fsync + rename + directory
// sync — the one crash-safety discipline shared by result values and the
// sharded store's manifest.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	syncDir(dir)
	return nil
}

// syncDir persists a directory entry (the rename) to stable storage. Best
// effort: a failure only weakens crash durability, never correctness — the
// entry is either fully present or absent after recovery either way.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Len returns the number of results resident in memory.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Stats returns cumulative hit/miss/put counters.
func (s *Store) Stats() (hits, misses, puts uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits, s.misses, s.puts
}

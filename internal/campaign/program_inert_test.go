package campaign

import (
	"encoding/json"
	"testing"
)

// TestWireProgramFieldInert pins the inertness invariant for
// WireJob.Program, exactly like TestWireCampaignFieldInert does for the
// campaign annotation: Job() never reads the field, so no payload — valid
// program bytes, garbage, anything — can reach the recomputed content key
// or the job the worker executes. The shipped program influences *how* a
// worker runs the cell (executeSim decodes and verifies it separately),
// never *what* the cell is.
func TestWireProgramFieldInert(t *testing.T) {
	w := wireJobs(t, 1)[0]
	if w.Program != nil {
		t.Fatalf("fresh wire job carries %d program bytes", len(w.Program))
	}
	stamped := *w
	stamped.Program = []byte("not even a valid program artifact")
	data, err := json.Marshal(&stamped)
	if err != nil {
		t.Fatal(err)
	}
	var rt WireJob
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	if string(rt.Program) != string(stamped.Program) {
		t.Fatalf("program bytes changed in transit")
	}
	j, err := rt.Job()
	if err != nil {
		t.Fatalf("program-stamped wire job rejected: %v", err)
	}
	if key, ok := j.Key(); !ok || key != w.Key {
		t.Fatalf("program bytes changed the key: %q vs %q", key, w.Key)
	}
	if j.Program != nil {
		t.Fatal("Job() populated Program from wire bytes; decoding belongs to executeSim, after verification")
	}
}

// TestProgramKey pins the artifact address: deterministic, and sensitive
// to both inputs — a different module or a different cost table must land
// in a different store slot, or workers would decode the wrong program
// (and refuse it, wasting the shipping round-trip).
func TestProgramKey(t *testing.T) {
	k := ProgramKey("mod-a", "table-1")
	if k != ProgramKey("mod-a", "table-1") {
		t.Fatal("ProgramKey not deterministic")
	}
	if k == ProgramKey("mod-b", "table-1") {
		t.Fatal("ProgramKey ignores the module hash")
	}
	if k == ProgramKey("mod-a", "table-2") {
		t.Fatal("ProgramKey ignores the cost-table identity")
	}
	if len(k) != 64 {
		t.Fatalf("ProgramKey length %d, want 64 hex chars", len(k))
	}
}

package campaign

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"time"

	"astro/internal/journal"
	"astro/internal/telemetry"
)

// Worker protocol, coordinator side. WorkHandler serves the endpoints the
// pull-based workers speak (astro-serve mounts it under /work/, the CLI's
// in-process loopback cluster mounts the same handler):
//
//	POST /lease         LeaseRequest  -> LeaseResponse (content-addressed cells)
//	POST /renew         RenewRequest  -> RenewResponse (heartbeat: extend held leases)
//	POST /result        ResultSubmission -> ResultResponse (fsync-safe once stored)
//	POST /drain         DrainRequest  -> DrainResponse (drain or resume a worker)
//	GET  /status        QueueStats (pending/leased/done + per-worker counters)
//	GET  /fleet         FleetStatus (per-worker registry: liveness, throughput, in-flight cell)
//	GET  /journal       flight-recorder events after ?cursor=N (?n= caps the page)
//	GET  /traces        assembled per-cell traces, newest first (?campaign=, ?n=)
//	GET  /traces/{key}  one cell's trace
//	GET  /agents/{key}  trained-agent snapshot bytes from the shared store
//	PUT  /agents/{key}  publish a trained-agent snapshot (validated JSON)
//
// Leased cells are simulation jobs (WireJob kind "") or training cells
// (kind "train"); a training cell's result bytes are the trained-agent
// snapshot, validated to restore before any store sees it. The agents
// endpoints are the per-worker trained-agent snapshot exchange: snapshots
// live in the same content-addressed store as simulation results (keyed by
// TrainSpec.Key), so a fig10-style training cell finished on any machine
// warms every other machine through the coordinator — and workers leasing
// hybrid-by-agent-key simulation cells fetch the snapshot here too.

// LeaseRequest asks the coordinator for up to Max cells. LeaseErrors is
// the worker's cumulative count of failed lease attempts, self-reported
// so /work/fleet can show connectivity trouble the coordinator never
// observed directly (the failed connections never reached it).
type LeaseRequest struct {
	WorkerID    string `json:"worker_id"`
	Max         int    `json:"max"`
	LeaseErrors uint64 `json:"lease_errors,omitempty"`
}

// LeaseResponse carries the leased cells. An empty Cells slice means no
// work is available; the worker should poll again after RetryAfterMS.
type LeaseResponse struct {
	Cells        []*WireJob `json:"cells"`
	LeaseTTLMS   int64      `json:"lease_ttl_ms"`
	RetryAfterMS int64      `json:"retry_after_ms"`
}

// ResultSubmission pushes one cell's outcome back. Either Data (canonical
// sim.EncodeResult bytes) or Error (the worker could not execute the cell)
// is set. Spans carries the worker-side timing of the cell ("queued",
// "execute") for coordinator-side trace assembly; it is telemetry only
// and never touches validation, the store, or the result bytes.
type ResultSubmission struct {
	WorkerID string           `json:"worker_id"`
	Key      string           `json:"key"`
	Data     []byte           `json:"data,omitempty"`
	Error    string           `json:"error,omitempty"`
	Spans    []telemetry.Span `json:"spans,omitempty"`
}

// ResultResponse is the coordinator's verdict.
type ResultResponse struct {
	Status CompleteStatus `json:"status"`
}

// RenewRequest is the worker heartbeat: extend the leases it still holds
// on Keys. Workers send it at a third of the lease TTL while executing,
// which is what lets a short -lease-ttl coexist with cells (training
// especially) that run longer than the TTL.
type RenewRequest struct {
	WorkerID string   `json:"worker_id"`
	Keys     []string `json:"keys"`
}

// RenewResponse lists the keys actually renewed (request order). A key the
// worker sent that is absent here was not renewable — its lease expired
// and the cell has been re-queued or re-issued — and the worker abandons
// that cell rather than double-submitting a result another worker is
// already computing.
type RenewResponse struct {
	Renewed    []string `json:"renewed"`
	LeaseTTLMS int64    `json:"lease_ttl_ms"`
}

// DrainRequest flips a worker's coordinator-side state. Without Resume it
// drains: the worker receives no new cells, its held leases keep renewing
// and completing, and anything still held after GraceMS (0 = the lease
// TTL) is requeued. With Resume it returns a drained or quarantined
// worker to active.
type DrainRequest struct {
	WorkerID string `json:"worker_id"`
	GraceMS  int64  `json:"grace_ms,omitempty"`
	Resume   bool   `json:"resume,omitempty"`
}

// DrainResponse reports the worker's state after the transition and the
// held-lease count the drain is waiting on.
type DrainResponse struct {
	State string `json:"state"` // "active", "draining", or "quarantined"
	Held  int    `json:"held"`
}

// keyPattern is what a content address looks like: lowercase SHA-256 hex.
// The agents endpoints reject anything else so a crafted path can never
// escape the store's key space.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// maxResultBytes bounds request bodies (results and snapshots). Canonical
// results are a few KB; DQN snapshots tens of KB. 32 MiB is paranoia, not a
// target.
const maxResultBytes = 32 << 20

// WorkHandler builds the coordinator HTTP handler over a queue and the
// shared store (which backs the agent exchange). Mount it under a prefix
// with http.StripPrefix.
func WorkHandler(q *WorkQueue, store ResultStore) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, format string, args ...any) {
		writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
	}

	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad lease request: %v", err)
			return
		}
		if req.WorkerID == "" {
			writeErr(w, http.StatusBadRequest, "lease request needs worker_id")
			return
		}
		cells := q.Lease(req.WorkerID, req.Max)
		q.NoteWorkerLeaseErrors(req.WorkerID, req.LeaseErrors)
		writeJSON(w, http.StatusOK, LeaseResponse{
			Cells:        cells,
			LeaseTTLMS:   q.ttl.Milliseconds(),
			RetryAfterMS: 500,
		})
	})

	mux.HandleFunc("POST /renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad renew request: %v", err)
			return
		}
		if req.WorkerID == "" {
			writeErr(w, http.StatusBadRequest, "renew request needs worker_id")
			return
		}
		renewed := q.Renew(req.WorkerID, req.Keys)
		writeJSON(w, http.StatusOK, RenewResponse{
			Renewed:    renewed,
			LeaseTTLMS: q.ttl.Milliseconds(),
		})
	})

	mux.HandleFunc("POST /result", func(w http.ResponseWriter, r *http.Request) {
		var sub ResultSubmission
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBytes)).Decode(&sub); err != nil {
			writeErr(w, http.StatusBadRequest, "bad result submission: %v", err)
			return
		}
		if sub.WorkerID == "" || sub.Key == "" {
			writeErr(w, http.StatusBadRequest, "result submission needs worker_id and key")
			return
		}
		// Same key discipline as the agents endpoints: a content address is
		// 64 hex chars, and nothing else may reach the store's path logic
		// (the unknown-key banking path writes Store.Put(key, ...) — an
		// unvalidated "../../x" key would escape the cache directory).
		if !keyPattern.MatchString(sub.Key) {
			writeErr(w, http.StatusBadRequest, "malformed key %q", sub.Key)
			return
		}
		st := q.CompleteSpans(sub.WorkerID, sub.Key, sub.Data, sub.Error, sub.Spans)
		code := http.StatusOK
		if st == CompleteRejected {
			code = http.StatusUnprocessableEntity
		}
		writeJSON(w, code, ResultResponse{Status: st})
	})

	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		var req DrainRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad drain request: %v", err)
			return
		}
		if req.WorkerID == "" {
			writeErr(w, http.StatusBadRequest, "drain request needs worker_id")
			return
		}
		var ws WorkerStatus
		if req.Resume {
			ws = q.Resume(req.WorkerID)
		} else {
			ws = q.Drain(req.WorkerID, time.Duration(req.GraceMS)*time.Millisecond)
		}
		state := ws.State
		if state == WorkerActive {
			state = "active"
		}
		writeJSON(w, http.StatusOK, DrainResponse{State: state, Held: ws.Leased})
	})

	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, q.Stats())
	})

	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, q.Fleet())
	})

	mux.HandleFunc("GET /journal", func(w http.ResponseWriter, r *http.Request) {
		jr, ok := q.Events.(JournalReader)
		if !ok {
			writeErr(w, http.StatusNotFound, "journaling disabled (start the coordinator with -journal)")
			return
		}
		var cursor uint64
		if s := r.URL.Query().Get("cursor"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad cursor %q", s)
				return
			}
			cursor = v
		}
		n := 1000
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 && v <= 10000 {
				n = v
			}
		}
		evs, err := jr.ReadSince(cursor, n)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "read journal: %v", err)
			return
		}
		next := cursor
		if len(evs) > 0 {
			next = evs[len(evs)-1].Seq
		}
		if evs == nil {
			evs = []journal.Event{}
		}
		writeJSON(w, http.StatusOK, JournalPage{Events: evs, NextCursor: next})
	})

	mux.HandleFunc("GET /traces", func(w http.ResponseWriter, r *http.Request) {
		if q.Traces == nil {
			writeJSON(w, http.StatusOK, []telemetry.Trace{})
			return
		}
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		ts := q.Traces.List(r.URL.Query().Get("campaign"), n)
		if ts == nil {
			ts = []telemetry.Trace{}
		}
		writeJSON(w, http.StatusOK, ts)
	})

	mux.HandleFunc("GET /traces/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !keyPattern.MatchString(key) {
			writeErr(w, http.StatusBadRequest, "malformed key %q", key)
			return
		}
		if q.Traces == nil {
			writeErr(w, http.StatusNotFound, "trace retention disabled")
			return
		}
		t, ok := q.Traces.Get(key)
		if !ok {
			writeErr(w, http.StatusNotFound, "no trace for %s", key)
			return
		}
		writeJSON(w, http.StatusOK, t)
	})

	mux.HandleFunc("GET /agents/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !keyPattern.MatchString(key) {
			writeErr(w, http.StatusBadRequest, "malformed key %q", key)
			return
		}
		data, ok := store.Get(key)
		if !ok {
			writeErr(w, http.StatusNotFound, "no snapshot under %s", key)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})

	mux.HandleFunc("PUT /agents/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !keyPattern.MatchString(key) {
			writeErr(w, http.StatusBadRequest, "malformed key %q", key)
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBytes))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "read snapshot: %v", err)
			return
		}
		// Snapshots are keyed by training *inputs*, not bytes, so the hash
		// cannot be verified here. Structural validation is strict instead:
		// the payload must be a trained-agent snapshot whose agent actually
		// restores. This keeps a buggy publisher (key/data swapped, result
		// bytes under an agent key) — or any stray JSON — from overwriting
		// entries in the shared store through this endpoint; the /result
		// path stays the only way to write simulation results, and it
		// validates under a lease.
		if _, err := restoreTrained(data); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "body under %s: %v", key, err)
			return
		}
		if err := store.Put(key, data); err != nil {
			writeErr(w, http.StatusInternalServerError, "store snapshot: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	return mux
}

// WithBearerAuth guards h behind a shared bearer token: every request
// must carry "Authorization: Bearer <token>" or is refused with 401. An
// empty token returns h unwrapped — today's trusted-network behavior —
// so callers can pass their -token flag through unconditionally. Mount
// it around WorkHandler to guard all /work endpoints:
//
//	http.StripPrefix("/work", campaign.WithBearerAuth(token, campaign.WorkHandler(q, store)))
//
// The comparison is constant-time; the token travels in a header, so run
// TLS (or a trusted network) if the path crosses machines you don't own.
func WithBearerAuth(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	want := []byte("Bearer " + token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="astro"`)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnauthorized)
			json.NewEncoder(w).Encode(map[string]string{"error": "missing or invalid bearer token"})
			return
		}
		h.ServeHTTP(w, r)
	})
}

// AgentExchange is the worker-side tier of the trained-agent snapshot
// exchange: a ResultStore that reads through to the coordinator's store
// over HTTP and publishes local training results back. Point TrainCell (or
// TrainCells) at one and a training cell finished on any machine in the
// fleet is a cache hit on every other — the cross-machine analogue of the
// in-process trained-agent cache, with the same inference-exact snapshot
// bytes, so warm and cold machines produce byte-identical results.
type AgentExchange struct {
	Coordinator string       // coordinator base URL (the /work mount), e.g. http://host:8080/work
	Client      *http.Client // nil = http.DefaultClient
	Local       ResultStore  // local tier; fetched snapshots are cached here
	Token       string       // bearer token for coordinators behind WithBearerAuth ("" = none)
}

// NewAgentExchange builds an exchange over a local store (nil = fresh
// in-memory store).
func NewAgentExchange(coordinator string, local ResultStore) *AgentExchange {
	if local == nil {
		local = NewMemStore()
	}
	return &AgentExchange{Coordinator: coordinator, Local: local}
}

// exchangeClient bounds every AgentExchange request: the exchange sits on
// the cache-miss path of pools and training cells, where an unbounded
// request against a wedged coordinator would hang the whole run (and the
// CLI's -timeout context is not threaded through ResultStore.Get).
var exchangeClient = &http.Client{Timeout: 30 * time.Second}

func (x *AgentExchange) client() *http.Client {
	if x.Client != nil {
		return x.Client
	}
	return exchangeClient
}

func (x *AgentExchange) setAuth(req *http.Request) {
	if x.Token != "" {
		req.Header.Set("Authorization", "Bearer "+x.Token)
	}
}

// Get consults the local tier, then the coordinator; remote hits are cached
// locally.
func (x *AgentExchange) Get(key string) ([]byte, bool) {
	if data, ok := x.Local.Get(key); ok {
		return data, true
	}
	req, err := http.NewRequest(http.MethodGet, x.Coordinator+"/agents/"+key, nil)
	if err != nil {
		return nil, false
	}
	x.setAuth(req)
	resp, err := x.client().Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes))
	if err != nil {
		return nil, false
	}
	_ = x.Local.Put(key, data)
	return data, true
}

// Put stores locally and publishes to the coordinator (best effort: a
// network failure costs fleet-wide memoization, never the local result).
// Only restorable trained-agent snapshots are published — the exchange
// doubles as an ordinary ResultStore (simulation results flow through it
// when it fronts a pool's cache), and the coordinator's endpoint would
// reject anything else anyway, so non-snapshot payloads skip the network
// round-trip entirely.
func (x *AgentExchange) Put(key string, data []byte) error {
	if err := x.Local.Put(key, data); err != nil {
		return err
	}
	if _, err := restoreTrained(data); err != nil {
		return nil
	}
	req, err := http.NewRequest(http.MethodPut, x.Coordinator+"/agents/"+key, bytes.NewReader(data))
	if err != nil {
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	x.setAuth(req)
	if resp, err := x.client().Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}
	return nil
}

// Len reports the local tier's population.
func (x *AgentExchange) Len() int { return x.Local.Len() }

// Stats reports the local tier's counters.
func (x *AgentExchange) Stats() (hits, misses, puts uint64) { return x.Local.Stats() }

// LeaseTTL exposes the queue's lease duration (for worker status lines).
func (q *WorkQueue) LeaseTTL() time.Duration { return q.ttl }

package campaign

import (
	"fmt"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/rl"
	"astro/internal/sim"
)

// Wire-cell kinds. A WireJob is either a simulation cell (the zero value,
// for compatibility with pre-train-lease coordinators) or a training cell.
const (
	KindSim   = ""      // simulate a Job; result bytes are sim.EncodeResult
	KindTrain = "train" // train a TrainSpec; result bytes are a trained-agent snapshot
)

// WireJob is a cell in transit between the coordinator and a pull-based
// worker: fully self-contained (the module travels as its ir.Encode bytes,
// so the worker needs no workloads registry or compiler) and content-keyed
// (Key is the coordinator-computed content address; the worker recomputes
// it from the decoded fields and refuses a mismatch, which turns any
// serialization drift into a loud protocol error instead of a silently
// wrong cache entry).
//
// Two kinds of cell cross the wire. Simulation cells (Kind == KindSim)
// decode back into a Job via (*WireJob).Job; their policies travel by
// name, and a trained-agent hybrid travels as its snapshot's content key
// (AgentKey) — the worker fetches the snapshot through the /work/agents
// exchange and rebuilds the policy from it. Training cells
// (Kind == KindTrain) decode into a TrainSpec via (*WireJob).TrainSpec
// and reuse the shared fields (module, platform, OS, seed, args, opts)
// plus the Train block for the agent recipe; their result bytes are the
// trained-agent snapshot itself, keyed exactly like the in-process
// trained-agent cache.
//
// The only jobs that cannot cross the wire are those carrying an
// in-process Hybrid policy factory — arbitrary behaviour with no
// declarative identity — which RemoteRunner routes to its local fallback
// pool instead.
type WireJob struct {
	Kind      string `json:"kind,omitempty"` // KindSim or KindTrain
	Index     int    `json:"index"`
	Label     string `json:"label"`
	Benchmark string `json:"benchmark,omitempty"`

	Module   []byte  `json:"module"` // ir.Encode bytes (canonical codec)
	PlatName string  `json:"platform,omitempty"`
	OS       string  `json:"os,omitempty"`
	Actuator string  `json:"actuator,omitempty"`
	Little   int     `json:"little"` // initial config; 0L0B = all cores on
	Big      int     `json:"big"`
	Seed     int64   `json:"seed"`
	Args     []int64 `json:"args,omitempty"`

	// AgentKey carries a simulation cell's hybrid-by-agent-key policy: the
	// content address of the trained-agent snapshot the worker rebuilds
	// the hybrid runtime from (fetched via GET /work/agents/{key}).
	AgentKey string `json:"agent_key,omitempty"`

	// Opts carries the scalar simulator knobs. The policy fields (OS,
	// Actuator, Hybrid) are interfaces and must be nil — Job.Execute
	// enforces policies-by-name, so a wireable job never has them set and
	// they marshal as null.
	Opts sim.Options `json:"opts"`

	// Train carries the training recipe when Kind == KindTrain.
	Train *WireTrain `json:"train,omitempty"`

	// Key is the cell's content address as computed by the coordinator:
	// Job.Key for simulation cells, TrainSpec.Key for training cells.
	Key string `json:"key"`

	// Campaign is the engine campaign that enqueued this cell — telemetry
	// annotation only. It is provably inert: Job()/TrainSpec() never read
	// it, so it cannot reach the recomputed key, the execution, or the
	// result bytes (TestWireCampaignFieldInert pins this).
	Campaign string `json:"campaign,omitempty"`

	// Program optionally carries the module's compiled program in its
	// canonical byte encoding (sim.EncodeProgram), so a warm worker skips
	// recompiling a module the coordinator has already compiled. Like
	// Campaign it is inert for identity: Job() never reads it, so it cannot
	// reach the recomputed key or the result bytes
	// (TestWireProgramFieldInert pins this). The worker treats it as pure
	// acceleration — sim.DecodeProgram verifies the bytes against the
	// decoded module and the worker's own cost tables, and any mismatch
	// (stale generation, corruption, different platform calibration) falls
	// back to a local compile with byte-identical results (DESIGN.md
	// invariant 12).
	Program []byte `json:"program,omitempty"`
}

// WireTrain is the training-cell half of a WireJob: the agent recipe that,
// together with the shared module/platform/OS/seed/args/opts fields,
// reconstructs a TrainSpec. Every field participates in TrainSpec.Key, so
// the worker-side key verification covers all of them.
type WireTrain struct {
	Agent    string       `json:"agent,omitempty"` // "dqn" (default) or "tabular"
	DQN      rl.DQNConfig `json:"dqn"`
	Gamma    float64      `json:"gamma,omitempty"`
	Hipster  bool         `json:"hipster,omitempty"`
	Episodes int          `json:"episodes,omitempty"`
}

// Wire serializes the job for remote execution. Jobs with a Hybrid factory
// or an unfingerprintable option set are not wireable; agent-keyed hybrid
// jobs are (the snapshot travels separately, by content key, through the
// agent exchange).
func (j *Job) Wire() (*WireJob, error) {
	if j.Module == nil {
		return nil, fmt.Errorf("campaign: job %d (%s) has no module", j.Index, j.Label)
	}
	if j.Hybrid != nil {
		return nil, fmt.Errorf("campaign: job %d (%s) carries an in-process hybrid policy; not wireable", j.Index, j.Label)
	}
	if j.Opts.OS != nil || j.Opts.Actuator != nil || j.Opts.Hybrid != nil {
		return nil, fmt.Errorf("campaign: job %d (%s): set policies by name, not in Opts", j.Index, j.Label)
	}
	key, cacheable := j.Key()
	if !cacheable {
		return nil, fmt.Errorf("campaign: job %d (%s) is uncacheable; not wireable", j.Index, j.Label)
	}
	return &WireJob{
		Index:     j.Index,
		Label:     j.Label,
		Benchmark: j.Benchmark,
		Module:    ir.Encode(j.Module),
		PlatName:  j.PlatName,
		OS:        j.OS,
		Actuator:  j.Actuator,
		Little:    j.Config.Little,
		Big:       j.Config.Big,
		Seed:      j.Seed,
		Args:      j.Args,
		AgentKey:  j.AgentKey,
		Opts:      j.Opts,
		Key:       key,
	}, nil
}

// Job reconstructs the executable job and verifies its identity: the key
// recomputed from the decoded fields must equal the coordinator's. A
// mismatch means the two processes disagree about what the job *is* (codec
// drift, version skew) and executing it would poison the content-addressed
// store, so it is an error, not a warning.
func (wj *WireJob) Job() (*Job, error) {
	if wj.Kind != KindSim {
		return nil, fmt.Errorf("campaign: wire cell %q has kind %q, not a simulation job", wj.Label, wj.Kind)
	}
	mod, err := ir.Decode(wj.Module)
	if err != nil {
		return nil, fmt.Errorf("campaign: wire job %q: module: %w", wj.Label, err)
	}
	j := &Job{
		Index:     wj.Index,
		Label:     wj.Label,
		Benchmark: wj.Benchmark,
		Module:    mod,
		PlatName:  wj.PlatName,
		OS:        wj.OS,
		Actuator:  wj.Actuator,
		Config:    hw.Config{Little: wj.Little, Big: wj.Big},
		Seed:      wj.Seed,
		Args:      wj.Args,
		AgentKey:  wj.AgentKey,
		Opts:      wj.Opts,
	}
	key, ok := j.Key()
	if !ok {
		return nil, fmt.Errorf("campaign: wire job %q decodes to an uncacheable job", wj.Label)
	}
	if key != wj.Key {
		return nil, fmt.Errorf("campaign: wire job %q key mismatch: coordinator %s, worker %s (codec drift?)", wj.Label, wj.Key, key)
	}
	return j, nil
}

// Wire serializes the training cell for remote execution. Its Key is the
// spec's trained-agent cache key, so a training lease finished anywhere in
// the fleet lands in the store under exactly the address TrainCell — on
// any machine — consults.
func (ts *TrainSpec) Wire() (*WireJob, error) {
	if ts.Module == nil {
		return nil, fmt.Errorf("campaign: train spec %q has no module", ts.Label)
	}
	key, err := ts.Key() // also rejects policy interfaces left in Opts
	if err != nil {
		return nil, err
	}
	return &WireJob{
		Kind:     KindTrain,
		Label:    ts.Label,
		Module:   ir.Encode(ts.Module),
		PlatName: ts.PlatName,
		OS:       ts.OS,
		Seed:     ts.Seed,
		Args:     ts.Args,
		Opts:     ts.Opts,
		Train: &WireTrain{
			Agent:    ts.Agent,
			DQN:      ts.DQN,
			Gamma:    ts.Gamma,
			Hipster:  ts.Hipster,
			Episodes: ts.Episodes,
		},
		Key: key,
	}, nil
}

// TrainSpec reconstructs the training cell and verifies its identity
// against the coordinator's key, exactly like (*WireJob).Job does for
// simulation cells: the recomputed trained-agent cache key must match, or
// the worker would train the wrong recipe and store it under the
// coordinator's address.
func (wj *WireJob) TrainSpec() (*TrainSpec, error) {
	if wj.Kind != KindTrain || wj.Train == nil {
		return nil, fmt.Errorf("campaign: wire cell %q has kind %q, not a training cell", wj.Label, wj.Kind)
	}
	mod, err := ir.Decode(wj.Module)
	if err != nil {
		return nil, fmt.Errorf("campaign: wire train cell %q: module: %w", wj.Label, err)
	}
	ts := &TrainSpec{
		Label:    wj.Label,
		Module:   mod,
		PlatName: wj.PlatName,
		OS:       wj.OS,
		Agent:    wj.Train.Agent,
		DQN:      wj.Train.DQN,
		Gamma:    wj.Train.Gamma,
		Hipster:  wj.Train.Hipster,
		Episodes: wj.Train.Episodes,
		Seed:     wj.Seed,
		Args:     wj.Args,
		Opts:     wj.Opts,
	}
	key, err := ts.Key()
	if err != nil {
		return nil, fmt.Errorf("campaign: wire train cell %q: %w", wj.Label, err)
	}
	if key != wj.Key {
		return nil, fmt.Errorf("campaign: wire train cell %q key mismatch: coordinator %s, worker %s (codec drift?)", wj.Label, wj.Key, key)
	}
	return ts, nil
}

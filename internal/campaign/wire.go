package campaign

import (
	"fmt"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/sim"
)

// WireJob is a Job in transit between the coordinator and a pull-based
// worker: fully self-contained (the module travels as its ir.Encode bytes,
// so the worker needs no workloads registry or compiler) and content-keyed
// (Key is the coordinator-computed job key; the worker recomputes it from
// the decoded fields and refuses a mismatch, which turns any serialization
// drift into a loud protocol error instead of a silently wrong cache
// entry).
//
// Only declarative jobs are wireable: a Job carrying a Hybrid policy
// factory is arbitrary in-process behaviour and cannot cross the wire —
// RemoteRunner routes those to its local fallback pool instead. Trained
// agents travel separately, as rl.Snapshot bytes through the /work/agents
// exchange, keyed exactly like the trained-agent cache.
type WireJob struct {
	Index     int    `json:"index"`
	Label     string `json:"label"`
	Benchmark string `json:"benchmark,omitempty"`

	Module   []byte  `json:"module"` // ir.Encode bytes (canonical codec)
	PlatName string  `json:"platform,omitempty"`
	OS       string  `json:"os,omitempty"`
	Actuator string  `json:"actuator,omitempty"`
	Little   int     `json:"little"` // initial config; 0L0B = all cores on
	Big      int     `json:"big"`
	Seed     int64   `json:"seed"`
	Args     []int64 `json:"args,omitempty"`

	// Opts carries the scalar simulator knobs. The policy fields (OS,
	// Actuator, Hybrid) are interfaces and must be nil — Job.Execute
	// enforces policies-by-name, so a wireable job never has them set and
	// they marshal as null.
	Opts sim.Options `json:"opts"`

	// Key is the job's content address as computed by the coordinator.
	Key string `json:"key"`
}

// Wire serializes the job for remote execution. Jobs with a Hybrid factory
// or an unfingerprintable option set are not wireable.
func (j *Job) Wire() (*WireJob, error) {
	if j.Module == nil {
		return nil, fmt.Errorf("campaign: job %d (%s) has no module", j.Index, j.Label)
	}
	if j.Hybrid != nil {
		return nil, fmt.Errorf("campaign: job %d (%s) carries an in-process hybrid policy; not wireable", j.Index, j.Label)
	}
	if j.Opts.OS != nil || j.Opts.Actuator != nil || j.Opts.Hybrid != nil {
		return nil, fmt.Errorf("campaign: job %d (%s): set policies by name, not in Opts", j.Index, j.Label)
	}
	key, cacheable := j.Key()
	if !cacheable {
		return nil, fmt.Errorf("campaign: job %d (%s) is uncacheable; not wireable", j.Index, j.Label)
	}
	return &WireJob{
		Index:     j.Index,
		Label:     j.Label,
		Benchmark: j.Benchmark,
		Module:    ir.Encode(j.Module),
		PlatName:  j.PlatName,
		OS:        j.OS,
		Actuator:  j.Actuator,
		Little:    j.Config.Little,
		Big:       j.Config.Big,
		Seed:      j.Seed,
		Args:      j.Args,
		Opts:      j.Opts,
		Key:       key,
	}, nil
}

// Job reconstructs the executable job and verifies its identity: the key
// recomputed from the decoded fields must equal the coordinator's. A
// mismatch means the two processes disagree about what the job *is* (codec
// drift, version skew) and executing it would poison the content-addressed
// store, so it is an error, not a warning.
func (wj *WireJob) Job() (*Job, error) {
	mod, err := ir.Decode(wj.Module)
	if err != nil {
		return nil, fmt.Errorf("campaign: wire job %q: module: %w", wj.Label, err)
	}
	j := &Job{
		Index:     wj.Index,
		Label:     wj.Label,
		Benchmark: wj.Benchmark,
		Module:    mod,
		PlatName:  wj.PlatName,
		OS:        wj.OS,
		Actuator:  wj.Actuator,
		Config:    hw.Config{Little: wj.Little, Big: wj.Big},
		Seed:      wj.Seed,
		Args:      wj.Args,
		Opts:      wj.Opts,
	}
	key, ok := j.Key()
	if !ok {
		return nil, fmt.Errorf("campaign: wire job %q decodes to an uncacheable job", wj.Label)
	}
	if key != wj.Key {
		return nil, fmt.Errorf("campaign: wire job %q key mismatch: coordinator %s, worker %s (codec drift?)", wj.Label, wj.Key, key)
	}
	return j, nil
}

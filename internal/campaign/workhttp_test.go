package campaign

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startCoordinator serves the work protocol over real loopback HTTP.
func startCoordinator(t *testing.T, q *WorkQueue, store ResultStore) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.StripPrefix("/work", WorkHandler(q, store)))
	t.Cleanup(srv.Close)
	return srv
}

// TestWorkerExecutesLeasedCells drives the whole pull protocol end to end
// over HTTP: RemoteRunner enqueues, a Worker leases, executes and submits,
// and the outcomes match a local pool run bytewise.
func TestWorkerExecutesLeasedCells(t *testing.T) {
	spec := Spec{
		Benchmarks: []string{"micro"},
		Schedulers: []string{"default", "gts"},
		Seeds:      []int64{5},
	}
	local, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	pool := &Pool{Workers: 4, Store: NewMemStore()}
	want, err := pool.Run(context.Background(), local, nil)
	if err != nil {
		t.Fatal(err)
	}

	store := NewMemStore()
	q := NewWorkQueue(time.Minute)
	srv := startCoordinator(t, q, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Coordinator: srv.URL + "/work", ID: "w-test", Max: 3, Poll: 5 * time.Millisecond}
	go w.Run(ctx)

	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	runner := &RemoteRunner{Queue: q, Store: store}
	got, err := runner.Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f1, f2 := Fingerprint(want), Fingerprint(got); f1 != f2 {
		t.Fatalf("remote fingerprint %s != local %s", f2, f1)
	}
	st := q.Stats()
	if len(st.Workers) != 1 || st.Workers[0].Completed != len(jobs) {
		t.Fatalf("worker status: %+v", st.Workers)
	}
}

// TestAgentExchangeWarmsTrainingAcrossMachines pins the fig10-style flow:
// machine A trains a cell and publishes the snapshot through the exchange;
// machine B's TrainCell on the same inputs is a cache hit served from the
// coordinator, with an inference-identical agent.
func TestAgentExchangeWarmsTrainingAcrossMachines(t *testing.T) {
	coordStore := NewMemStore()
	q := NewWorkQueue(time.Minute)
	srv := startCoordinator(t, q, coordStore)

	machineA := NewAgentExchange(srv.URL+"/work", NewMemStore())
	cold, err := TrainCell(machineA, trainSpecFor(t, "spin", 21))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("cold training claims a cache hit")
	}
	if coordStore.Len() != 1 {
		t.Fatalf("snapshot not published to coordinator (store len %d)", coordStore.Len())
	}

	machineB := NewAgentExchange(srv.URL+"/work", NewMemStore())
	warm, err := TrainCell(machineB, trainSpecFor(t, "spin", 21))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("training on machine B was not served from the coordinator")
	}
	if a, b := agentFingerprint(t, cold.Agent), agentFingerprint(t, warm.Agent); string(a) != string(b) {
		t.Fatal("exchanged agent is not inference-identical")
	}
}

// TestWorkHandlerRejectsBadKeys keeps crafted paths out of the store.
func TestWorkHandlerRejectsBadKeys(t *testing.T) {
	srv := startCoordinator(t, NewWorkQueue(time.Minute), NewMemStore())
	for _, key := range []string{"../../etc/passwd", "ABCD", strings.Repeat("g", 64)} {
		resp, err := http.Get(srv.URL + "/work/agents/" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound &&
			resp.StatusCode != http.StatusMovedPermanently {
			t.Fatalf("key %q: status %d", key, resp.StatusCode)
		}
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("key %q accepted", key)
		}
	}
	// A well-formed key only accepts a restorable trained-agent snapshot:
	// non-JSON, stray JSON ({} — which would decode as a zero sim.Result
	// and poison warm runs if it reached the shared store), and truncated
	// snapshots are all refused before Put.
	key := strings.Repeat("ab", 32)
	for _, body := range []string{"not json", "{}", `{"agent":{"kind":"dqn"}}`} {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+"/work/agents/"+key, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("body %q: status %d, want 422", body, resp.StatusCode)
		}
	}
}

// TestResultSubmissionRejectsTraversalKeys pins that a crafted result key
// can never reach the store's path logic (the unknown-key banking path
// would otherwise write outside the cache directory).
func TestResultSubmissionRejectsTraversalKeys(t *testing.T) {
	store := NewMemStore()
	q := NewWorkQueue(time.Minute)
	q.Store = store
	srv := startCoordinator(t, q, store)
	body := `{"worker_id":"evil","key":"../../evil","data":"e30="}`
	resp, err := http.Post(srv.URL+"/work/result", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal key: status %d, want 400", resp.StatusCode)
	}
	if store.Len() != 0 {
		t.Fatal("traversal key reached the store")
	}
	// The queue API itself also refuses to bank malformed keys.
	if st := q.Complete("evil", "../../evil2", []byte(`{"time_s":0}`), ""); st != CompleteUnknown {
		t.Fatalf("direct complete: %v", st)
	}
	if store.Len() != 0 {
		t.Fatal("malformed key banked through the queue")
	}
}

package campaign

import (
	"fmt"
	"strings"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/sim"
	"astro/internal/workloads"
)

// Spec is the declarative campaign description: a cross-product grid that
// Expand turns into one Job per cell. It is the JSON body of
// POST /campaigns on astro-serve and the -campaign input of the CLIs.
type Spec struct {
	Name string `json:"name,omitempty"`

	// Benchmarks are workloads.Expand patterns: names, suites ("parsec",
	// "rodinia", "micro"), "all", or prefix globs ("hotspot*"). Required.
	Benchmarks []string `json:"benchmarks"`

	// Platforms are hw platform names; default ["odroid-xu4"].
	Platforms []string `json:"platforms,omitempty"`

	// Schedulers name scheduling policies; default ["default"]. Tokens:
	// "default" (least-loaded OS, no actuation), "gts" (ARM's Global Task
	// Scheduling), "octopus-man" (threshold ladder actuator),
	// "fixed:<xLyB>" (pinned actuator), "random:<seed>".
	Schedulers []string `json:"schedulers,omitempty"`

	// Configs are initial hardware configurations: "<xLyB>", "all-on"
	// (default), or "all" to sweep every valid configuration of the
	// platform.
	Configs []string `json:"configs,omitempty"`

	// Seeds for the simulator RNG; default [0].
	Seeds []int64 `json:"seeds,omitempty"`

	// Scale selects benchmark arguments and simulator knob defaults:
	// "small" (default) or "paper".
	Scale string `json:"scale,omitempty"`

	// Sim overrides individual simulator knobs (zero = scale default).
	Sim Knobs `json:"sim,omitempty"`
}

// Knobs are the spec-settable scalar simulator options.
type Knobs struct {
	QuantumS    float64 `json:"quantum_s,omitempty"`
	TickS       float64 `json:"tick_s,omitempty"`
	CheckpointS float64 `json:"checkpoint_s,omitempty"`
	SampleS     float64 `json:"sample_s,omitempty"`
	MaxTimeS    float64 `json:"max_time_s,omitempty"`
}

func (s *Spec) scale() (string, error) {
	switch s.Scale {
	case "", "small":
		return "small", nil
	case "paper":
		return "paper", nil
	}
	return "", fmt.Errorf("campaign: scale must be \"small\" or \"paper\", got %q", s.Scale)
}

// baseOptions mirrors the experiment harness defaults for each scale so
// declarative campaigns and figure drivers agree on the time axis.
func (s *Spec) baseOptions(scale string) sim.Options {
	var o sim.Options
	if scale == "paper" {
		o.CheckpointS, o.QuantumS, o.TickS = 1e-3, 100e-6, 500e-6
	} else {
		o.CheckpointS, o.QuantumS, o.TickS = 400e-6, 50e-6, 200e-6
	}
	if s.Sim.QuantumS > 0 {
		o.QuantumS = s.Sim.QuantumS
	}
	if s.Sim.TickS > 0 {
		o.TickS = s.Sim.TickS
	}
	if s.Sim.CheckpointS > 0 {
		o.CheckpointS = s.Sim.CheckpointS
	}
	if s.Sim.SampleS > 0 {
		o.SampleS = s.Sim.SampleS
	}
	if s.Sim.MaxTimeS > 0 {
		o.MaxTimeS = s.Sim.MaxTimeS
	}
	return o
}

// schedToken maps a scheduler token to (OS, actuator) names.
func schedToken(tok string) (osName, actName string, err error) {
	switch {
	case tok == "default" || tok == "":
		return "", "", nil
	case tok == "gts":
		return "gts", "", nil
	case tok == "octopus-man":
		return "", "octopus-man", nil
	case strings.HasPrefix(tok, "fixed:") || strings.HasPrefix(tok, "random:"):
		return "", tok, nil
	}
	return "", "", fmt.Errorf("campaign: unknown scheduler %q (have default, gts, octopus-man, fixed:<xLyB>, random:<seed>)", tok)
}

// Validate checks the spec without compiling anything.
func (s *Spec) Validate() error {
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("campaign: spec needs at least one benchmark pattern")
	}
	if _, err := s.scale(); err != nil {
		return err
	}
	if _, err := workloads.Expand(s.Benchmarks); err != nil {
		return err
	}
	for _, p := range s.platforms() {
		if _, err := hw.ByName(p); err != nil {
			return err
		}
	}
	for _, tok := range s.schedulers() {
		osName, actName, err := schedToken(tok)
		if err != nil {
			return err
		}
		if _, err := buildOS(osName); err != nil {
			return err
		}
		// Actuators are validated against every target platform: a
		// "fixed:<cfg>" config can be legal on one board and not another.
		for _, pn := range s.platforms() {
			plat, err := hw.ByName(pn)
			if err != nil {
				return err
			}
			if _, err := buildActuator(actName, plat); err != nil {
				return err
			}
		}
	}
	for _, c := range s.configs() {
		if c == "all" || c == "all-on" {
			continue
		}
		cfg, err := hw.ParseConfig(c)
		if err != nil {
			return err
		}
		for _, pn := range s.platforms() {
			plat, err := hw.ByName(pn)
			if err != nil {
				return err
			}
			if !cfg.Valid(plat.MaxLittle(), plat.MaxBig()) {
				return fmt.Errorf("campaign: config %v invalid on %s", cfg, pn)
			}
		}
	}
	return nil
}

func (s *Spec) platforms() []string {
	if len(s.Platforms) == 0 {
		return []string{DefaultPlatform}
	}
	return s.Platforms
}

func (s *Spec) schedulers() []string {
	if len(s.Schedulers) == 0 {
		return []string{"default"}
	}
	return s.Schedulers
}

func (s *Spec) configs() []string {
	if len(s.Configs) == 0 {
		return []string{"all-on"}
	}
	return s.Configs
}

func (s *Spec) seeds() []int64 {
	if len(s.Seeds) == 0 {
		return []int64{0}
	}
	return s.Seeds
}

// Expand compiles each benchmark once and materializes the cross-product
// grid as jobs, in deterministic order: benchmark-major, then platform,
// scheduler, configuration, seed.
func (s *Spec) Expand() ([]*Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	scale, _ := s.scale()
	specs, err := workloads.Expand(s.Benchmarks)
	if err != nil {
		return nil, err
	}
	base := s.baseOptions(scale)

	type compiled struct {
		mod  *ir.Module
		hash string
		args []int64
	}
	mods := make([]compiled, len(specs))
	for i, ws := range specs {
		mod, err := ws.Compile()
		if err != nil {
			return nil, err
		}
		args := ws.SmallArgs()
		if scale == "paper" {
			args = ws.Args()
		}
		// Hash once per module, not once per grid cell.
		mods[i] = compiled{mod: mod, hash: ModuleHash(mod), args: args}
	}

	var jobs []*Job
	for i, ws := range specs {
		for _, platName := range s.platforms() {
			plat, err := hw.ByName(platName)
			if err != nil {
				return nil, err
			}
			var cfgs []hw.Config
			for _, c := range s.configs() {
				switch c {
				case "all":
					cfgs = append(cfgs, plat.Configs()...)
				case "all-on":
					cfgs = append(cfgs, hw.Config{}) // zero = all cores on
				default:
					cfg, err := hw.ParseConfig(c)
					if err != nil {
						return nil, err
					}
					if !cfg.Valid(plat.MaxLittle(), plat.MaxBig()) {
						return nil, fmt.Errorf("campaign: config %v invalid on %s", cfg, platName)
					}
					cfgs = append(cfgs, cfg)
				}
			}
			for _, tok := range s.schedulers() {
				osName, actName, err := schedToken(tok)
				if err != nil {
					return nil, err
				}
				for _, cfg := range cfgs {
					for _, seed := range s.seeds() {
						cfgLabel := "all-on"
						if cfg.Cores() > 0 {
							cfgLabel = cfg.String()
						}
						jobs = append(jobs, &Job{
							Index:     len(jobs),
							Label:     fmt.Sprintf("%s/%s/%s/%s/seed%d", ws.Name, platName, tok, cfgLabel, seed),
							Benchmark: ws.Name,
							Module:    mods[i].mod,
							PlatName:  platName,
							OS:        osName,
							Actuator:  actName,
							Config:    cfg,
							Seed:      seed,
							Args:      mods[i].args,
							Opts:      base,
							modHash:   mods[i].hash,
						})
					}
				}
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("campaign: spec expands to zero jobs")
	}
	return jobs, nil
}

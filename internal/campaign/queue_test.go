package campaign

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/sim"
)

// wireJobs expands a small spec and wires every job, returning the wire
// forms plus valid canonical result bytes for the first job (executed
// once, so tests can submit real results).
func wireJobs(t *testing.T, n int) []*WireJob {
	t.Helper()
	spec := Spec{
		Benchmarks: []string{"micro"},
		Schedulers: []string{"default"},
		Seeds:      []int64{11},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < n {
		t.Fatalf("spec expands to %d jobs, need %d", len(jobs), n)
	}
	wires := make([]*WireJob, n)
	for i := 0; i < n; i++ {
		w, err := jobs[i].Wire()
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
	}
	return wires
}

// validResult executes the wire job for real and returns canonical bytes.
func validResult(t *testing.T, w *WireJob) []byte {
	t.Helper()
	j, err := w.Job()
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Execute()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sim.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// fakeClock pins a queue to manual time.
func fakeClock(q *WorkQueue) *time.Time {
	now := time.Unix(1_000_000, 0)
	q.now = func() time.Time { return now }
	return &now
}

func TestWireJobRoundTrip(t *testing.T) {
	w := wireJobs(t, 1)[0]
	j, err := w.Job()
	if err != nil {
		t.Fatal(err)
	}
	key, ok := j.Key()
	if !ok || key != w.Key {
		t.Fatalf("round-tripped key %q (cacheable=%v) != wire key %q", key, ok, w.Key)
	}
	// Tampering with any field must be detected by the key check.
	w2 := *w
	w2.Seed++
	if _, err := w2.Job(); err == nil || !strings.Contains(err.Error(), "key mismatch") {
		t.Fatalf("tampered wire job accepted: %v", err)
	}
}

// wireTrainCell builds a training lease for the queue tests.
func wireTrainCell(t *testing.T, seed int64) *WireJob {
	t.Helper()
	w, err := trainSpecFor(t, "spin", seed).Wire()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWireTrainRoundTrip(t *testing.T) {
	w := wireTrainCell(t, 31)
	ts, err := w.TrainSpec()
	if err != nil {
		t.Fatal(err)
	}
	key, err := ts.Key()
	if err != nil || key != w.Key {
		t.Fatalf("round-tripped key %q (err %v) != wire key %q", key, err, w.Key)
	}
	// Tampering with the recipe must be detected by the key check.
	w2 := *w
	train := *w2.Train
	train.Episodes++
	w2.Train = &train
	if _, err := w2.TrainSpec(); err == nil || !strings.Contains(err.Error(), "key mismatch") {
		t.Fatalf("tampered wire train cell accepted: %v", err)
	}
	// A training cell is not a simulation job and vice versa.
	if _, err := w.Job(); err == nil {
		t.Fatal("train cell decoded as a simulation job")
	}
	if _, err := wireJobs(t, 1)[0].TrainSpec(); err == nil {
		t.Fatal("simulation cell decoded as a train spec")
	}
}

// TestTrainResultValidatedAsSnapshot pins the per-kind validation: bytes
// that merely decode as a (zero) sim result must not complete a training
// cell — only a restorable trained-agent snapshot may.
func TestTrainResultValidatedAsSnapshot(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	w := wireTrainCell(t, 33)
	var calls atomic.Int32
	q.Enqueue(w, func(data []byte, err error) {
		calls.Add(1)
		if err != nil {
			t.Errorf("waiter got error: %v", err)
		}
	})
	q.Lease("w1", 1)
	// "{}" passes sim.DecodeResult but is not a snapshot.
	if st := q.Complete("w1", w.Key, []byte("{}"), ""); st != CompleteRejected {
		t.Fatalf("non-snapshot bytes: %v (want rejected)", st)
	}
	if calls.Load() != 0 {
		t.Fatal("waiter saw non-snapshot bytes")
	}
	// The cell re-queued; a real snapshot completes it.
	if cells := q.Lease("w2", 1); len(cells) != 1 {
		t.Fatal("rejected train cell not re-queued")
	}
	ts, err := w.TrainSpec()
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	if _, err := TrainCell(store, ts); err != nil {
		t.Fatal(err)
	}
	snap, ok := store.Get(w.Key)
	if !ok {
		t.Fatal("training did not bank a snapshot")
	}
	if st := q.Complete("w2", w.Key, snap, ""); st != CompleteAccepted {
		t.Fatalf("valid snapshot: %v", st)
	}
	if calls.Load() != 1 {
		t.Fatalf("waiter invoked %d times", calls.Load())
	}
}

// TestRenewExtendsExactlyOneLease pins the renewal races: renewal extends
// only the named lease — the worker's other cell expires on schedule — and
// a renewal from a worker that does not hold the lease changes nothing.
func TestRenewExtendsExactlyOneLease(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	now := fakeClock(q)
	ws := wireJobs(t, 2)
	q.Enqueue(ws[0], func([]byte, error) {})
	q.Enqueue(ws[1], func([]byte, error) {})
	if cells := q.Lease("w1", 2); len(cells) != 2 {
		t.Fatalf("leased %d cells, want 2", len(cells))
	}
	// A stranger's renewal is rejected outright — and does not register the
	// stranger as a worker in /work/status.
	if renewed := q.Renew("impostor", []string{ws[0].Key}); len(renewed) != 0 {
		t.Fatalf("impostor renewed %v", renewed)
	}
	for _, w := range q.Stats().Workers {
		if w.ID == "impostor" {
			t.Fatal("impostor renewal minted a worker-status row")
		}
	}
	// Half a TTL in, w1 renews only its first cell.
	*now = now.Add(30 * time.Second)
	if renewed := q.Renew("w1", []string{ws[0].Key}); len(renewed) != 1 || renewed[0] != ws[0].Key {
		t.Fatalf("renewed %v, want exactly %s", renewed, ws[0].Key)
	}
	// Past the original expiry: the renewed cell is still held, the
	// unrenewed one has been re-issued.
	*now = now.Add(45 * time.Second)
	reissued := q.Lease("w2", 2)
	if len(reissued) != 1 || reissued[0].Key != ws[1].Key {
		t.Fatalf("re-issue after partial renewal: got %d cells", len(reissued))
	}
	st := q.Stats()
	if st.Leased != 2 || st.Requeues != 1 || st.Renewals != 1 {
		t.Fatalf("stats after partial renewal: %+v", st)
	}
}

// TestRenewAfterExpiryRejected pins the other race: once a training
// cell's lease expires, its renewal is refused and the cell is already
// waiting at the *front* of the queue, ahead of older pending work.
func TestRenewAfterExpiryRejected(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	now := fakeClock(q)
	train := wireTrainCell(t, 35)
	q.Enqueue(train, func([]byte, error) {})
	if cells := q.Lease("w1", 1); len(cells) != 1 {
		t.Fatal("train cell not leased")
	}
	// Fresh work arrives behind the in-flight training cell.
	sim := wireJobs(t, 1)[0]
	q.Enqueue(sim, func([]byte, error) {})
	// The lease expires before the next heartbeat lands.
	*now = now.Add(2 * time.Minute)
	if renewed := q.Renew("w1", []string{train.Key}); len(renewed) != 0 {
		t.Fatalf("renew-after-expiry extended %v", renewed)
	}
	if st := q.Stats(); st.Renewals != 0 || st.Requeues != 1 {
		t.Fatalf("stats after stale renewal: %+v", st)
	}
	// The expired training cell re-issues at the queue front, before the
	// fresh simulation cell.
	next := q.Lease("w2", 1)
	if len(next) != 1 || next[0].Key != train.Key || next[0].Kind != KindTrain {
		t.Fatalf("queue front after expiry: %+v", next)
	}
}

func TestLeaseExpiryReissuesCell(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	now := fakeClock(q)
	w := wireJobs(t, 1)[0]

	var got atomic.Int32
	q.Enqueue(w, func(data []byte, err error) { got.Add(1) })

	first := q.Lease("w1", 4)
	if len(first) != 1 || first[0].Key != w.Key {
		t.Fatalf("lease 1: got %d cells", len(first))
	}
	// Within the TTL the cell must NOT be handed out again.
	if again := q.Lease("w2", 4); len(again) != 0 {
		t.Fatalf("cell double-leased inside TTL")
	}
	// After expiry, the next lease — from any worker — re-issues it.
	*now = now.Add(2 * time.Minute)
	second := q.Lease("w2", 4)
	if len(second) != 1 || second[0].Key != w.Key {
		t.Fatalf("expired cell not re-issued: got %d cells", len(second))
	}
	st := q.Stats()
	if st.Requeues != 1 || st.Leased != 1 || st.Pending != 0 {
		t.Fatalf("stats after re-issue: %+v", st)
	}
	// The late worker finishing first still completes the cell.
	data := validResult(t, w)
	if s := q.Complete("w1", w.Key, data, ""); s != CompleteAccepted {
		t.Fatalf("late completion: %v", s)
	}
	if got.Load() != 1 {
		t.Fatalf("waiter invoked %d times", got.Load())
	}
}

func TestDuplicateResultIsIdempotent(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	w := wireJobs(t, 1)[0]
	var calls atomic.Int32
	q.Enqueue(w, func(data []byte, err error) {
		if err != nil {
			t.Errorf("waiter got error: %v", err)
		}
		calls.Add(1)
	})
	q.Lease("w1", 1)
	data := validResult(t, w)
	if s := q.Complete("w1", w.Key, data, ""); s != CompleteAccepted {
		t.Fatalf("first submission: %v", s)
	}
	if s := q.Complete("w2", w.Key, data, ""); s != CompleteDuplicate {
		t.Fatalf("second submission: %v (want duplicate)", s)
	}
	if calls.Load() != 1 {
		t.Fatalf("waiter invoked %d times, want exactly once", calls.Load())
	}
	if st := q.Stats(); st.Duplicates != 1 || st.Done != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMalformedResultRejectedWithoutPoisoning(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	w := wireJobs(t, 1)[0]
	var calls atomic.Int32
	q.Enqueue(w, func(data []byte, err error) {
		calls.Add(1)
		if err != nil {
			t.Errorf("waiter got error: %v", err)
		}
		if _, derr := sim.DecodeResult(data); derr != nil {
			t.Errorf("waiter received undecodable bytes")
		}
	})
	q.Lease("bad-worker", 1)
	if s := q.Complete("bad-worker", w.Key, []byte("{not json"), ""); s != CompleteRejected {
		t.Fatalf("malformed submission: %v (want rejected)", s)
	}
	if calls.Load() != 0 {
		t.Fatal("waiter saw a malformed result")
	}
	// The cell is back in the queue for another worker.
	cells := q.Lease("good-worker", 1)
	if len(cells) != 1 {
		t.Fatalf("rejected cell not re-queued")
	}
	if s := q.Complete("good-worker", w.Key, validResult(t, w), ""); s != CompleteAccepted {
		t.Fatalf("valid retry: %v", s)
	}
	if calls.Load() != 1 {
		t.Fatalf("waiter invoked %d times", calls.Load())
	}
	if st := q.Stats(); st.Rejects != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWorkerErrorRequeuesThenFails(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	w := wireJobs(t, 1)[0]
	var lastErr atomic.Value
	q.Enqueue(w, func(data []byte, err error) {
		if err != nil {
			lastErr.Store(err.Error())
		}
	})
	// maxAttempts is 3: three lease+error cycles exhaust the cell.
	for i := 0; i < 3; i++ {
		cells := q.Lease("w1", 1)
		if len(cells) != 1 {
			t.Fatalf("attempt %d: no cell", i)
		}
		q.Complete("w1", w.Key, nil, "simulated crash")
	}
	msg, _ := lastErr.Load().(string)
	if !strings.Contains(msg, "simulated crash") {
		t.Fatalf("waiter error = %q, want the worker failure surfaced", msg)
	}
	if cells := q.Lease("w1", 1); len(cells) != 0 {
		t.Fatal("failed cell still leasable")
	}
}

func TestEnqueueDeduplicatesAndCancelWithdraws(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	w := wireJobs(t, 1)[0]
	var a, b atomic.Int32
	q.Enqueue(w, func([]byte, error) { a.Add(1) })
	cancelB := q.Enqueue(w, func([]byte, error) { b.Add(1) })
	if st := q.Stats(); st.Pending != 1 {
		t.Fatalf("duplicate enqueue created %d pending cells", st.Pending)
	}
	if !cancelB() {
		t.Fatal("cancel of pending waiter reported false")
	}
	q.Lease("w1", 1)
	q.Complete("w1", w.Key, validResult(t, w), "")
	if a.Load() != 1 || b.Load() != 0 {
		t.Fatalf("waiters a=%d b=%d, want 1/0", a.Load(), b.Load())
	}
	// Done cells are evicted (their bytes live in the result store, which
	// runners consult first): a later Enqueue of the same key starts a
	// fresh cell rather than replaying queue state.
	var c atomic.Int32
	q.Enqueue(w, func([]byte, error) { c.Add(1) })
	if c.Load() != 0 {
		t.Fatal("enqueue after eviction completed synchronously")
	}
	if st := q.Stats(); st.Pending != 1 {
		t.Fatalf("re-enqueued key not pending: %+v", st)
	}
	// Cancelling the sole waiter of a pending cell drops the cell.
	w2 := wireJobs(t, 1)[0]
	w2b := *w2
	w2b.Key = strings.Repeat("ab", 32) // distinct synthetic key
	cancel := q.Enqueue(&w2b, func([]byte, error) { t.Error("withdrawn cell completed") })
	if !cancel() {
		t.Fatal("cancel reported false")
	}
	for _, cell := range q.Lease("w1", 4) {
		if cell.Key == w2b.Key {
			t.Fatal("withdrawn cell still leased")
		}
	}
}

func TestStaleFailureFromExpiredWorkerIgnored(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	now := fakeClock(q)
	w := wireJobs(t, 1)[0]
	var calls atomic.Int32
	q.Enqueue(w, func(data []byte, err error) {
		calls.Add(1)
		if err != nil {
			t.Errorf("waiter got error: %v", err)
		}
	})
	// Worker A leases, its lease expires, worker B picks the cell up.
	q.Lease("a", 1)
	*now = now.Add(2 * time.Minute)
	if cells := q.Lease("b", 1); len(cells) != 1 {
		t.Fatal("expired cell not re-issued to b")
	}
	// A's late failure report (and late garbage) must not disturb B's lease.
	if st := q.Complete("a", w.Key, nil, "late crash"); st != CompleteUnknown {
		t.Fatalf("stale error report: %v (want unknown)", st)
	}
	if st := q.Complete("a", w.Key, []byte("garbage"), ""); st != CompleteRejected {
		t.Fatalf("stale garbage: %v", st)
	}
	st := q.Stats()
	if st.Leased != 1 || st.Pending != 0 {
		t.Fatalf("stale failure disturbed b's lease: %+v", st)
	}
	// B's valid result completes the cell exactly once.
	if s := q.Complete("b", w.Key, validResult(t, w), ""); s != CompleteAccepted {
		t.Fatalf("b's result: %v", s)
	}
	if calls.Load() != 1 {
		t.Fatalf("waiter invoked %d times", calls.Load())
	}
}

func TestFailedCellRetriesFreshOnResubmission(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	w := wireJobs(t, 1)[0]
	var firstErr atomic.Value
	q.Enqueue(w, func(data []byte, err error) {
		if err != nil {
			firstErr.Store(err.Error())
		}
	})
	for i := 0; i < 3; i++ { // exhaust maxAttempts
		q.Lease("w1", 1)
		q.Complete("w1", w.Key, nil, "crash")
	}
	if msg, _ := firstErr.Load().(string); !strings.Contains(msg, "crash") {
		t.Fatalf("first campaign did not fail: %q", msg)
	}
	// A resubmitted campaign is not poisoned by the stale failure: the key
	// re-enqueues fresh and can now succeed.
	var ok atomic.Int32
	q.Enqueue(w, func(data []byte, err error) {
		if err == nil {
			ok.Add(1)
		}
	})
	if cells := q.Lease("w2", 1); len(cells) != 1 {
		t.Fatal("resubmitted cell not leasable")
	}
	if s := q.Complete("w2", w.Key, validResult(t, w), ""); s != CompleteAccepted {
		t.Fatalf("retry after failure: %v", s)
	}
	if ok.Load() != 1 {
		t.Fatal("resubmitted campaign did not succeed")
	}
}

func TestCancelledCellResultStillStored(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	store := NewMemStore()
	q.Store = store
	w := wireJobs(t, 1)[0]
	cancel := q.Enqueue(w, func([]byte, error) { t.Error("cancelled waiter invoked") })
	q.Lease("w1", 1)
	if !cancel() {
		t.Fatal("cancel reported false")
	}
	// The worker finishes after the campaign was cancelled: the simulation
	// is already paid for, so the queue banks the bytes for future runs.
	if s := q.Complete("w1", w.Key, validResult(t, w), ""); s != CompleteAccepted {
		t.Fatalf("late completion: %v", s)
	}
	if _, ok := store.Get(w.Key); !ok {
		t.Fatal("ownerless result discarded instead of stored")
	}
}

package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"testing"
)

func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestShardedStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewShardedStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		data, ok := s.Get(testKey(i))
		if !ok || string(data) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %d: got %q ok=%v", i, data, ok)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}

	// A fresh process over the same directory sees everything: values via
	// the disk tier, enumeration via the per-shard index files.
	s2, err := NewShardedStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != n {
		t.Fatalf("reopened Len = %d, want %d (index files not loaded?)", got, n)
	}
	if keys := s2.Keys(); len(keys) != n {
		t.Fatalf("reopened Keys = %d entries, want %d", len(keys), n)
	}
	for i := 0; i < n; i++ {
		if data, ok := s2.Get(testKey(i)); !ok || string(data) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("reopened key %d: got %q ok=%v", i, data, ok)
		}
	}
}

func TestShardedStoreRejectsShardCountChange(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewShardedStore(dir, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedStore(dir, 32); err == nil {
		t.Fatal("reopening with a different shard count succeeded")
	}
	// Same count (and the 0 -> default path on a fresh dir) still works.
	if _, err := NewShardedStore(dir, 8); err != nil {
		t.Fatal(err)
	}
}

func TestShardedStoreConcurrentWriters(t *testing.T) {
	s, err := NewShardedStore(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := testKey(w*each + i)
				if err := s.Put(k, []byte(k)); err != nil {
					t.Errorf("put: %v", err)
				}
				if data, ok := s.Get(k); !ok || string(data) != k {
					t.Errorf("get-after-put %s failed", k[:8])
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != writers*each {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*each)
	}
	if _, _, puts := s.Stats(); puts != writers*each {
		t.Fatalf("puts = %d, want %d", puts, writers*each)
	}
}

func TestShardedStoreMemoryOnly(t *testing.T) {
	s, err := NewShardedStore("", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if data, ok := s.Get(testKey(1)); !ok || string(data) != "v" {
		t.Fatal("memory-only sharded store round trip failed")
	}
	if s.Len() != 1 || len(s.Keys()) != 1 {
		t.Fatalf("Len/Keys = %d/%d", s.Len(), len(s.Keys()))
	}
}

func TestStoreLayoutsAreMutuallyExclusive(t *testing.T) {
	// A populated plain store refuses to open sharded...
	plain := t.TempDir()
	s, err := NewStore(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedStore(plain, 8); err == nil {
		t.Fatal("sharded open of a plain store directory succeeded — silent cache invalidation")
	}
	// ...and a sharded directory refuses to open plain.
	sharded := t.TempDir()
	if _, err := NewShardedStore(sharded, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(sharded); err == nil {
		t.Fatal("plain open of a sharded store directory succeeded — silent cache invalidation")
	}
}

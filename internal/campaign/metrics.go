package campaign

import (
	"fmt"

	"astro/internal/telemetry"
)

// Telemetry instruments for the campaign layer, registered on the shared
// Default registry. Everything here is observational: no instrument is
// ever read back by campaign logic, and none of these values can reach
// cache keys, result bytes, or fingerprints (DESIGN.md invariant 8).
var (
	// Result store tiers.
	cStoreHits   = telemetry.Default.Counter("astro_store_hits_total", "Result-store lookups served from memory or disk.")
	cStoreMisses = telemetry.Default.Counter("astro_store_misses_total", "Result-store lookups that found nothing.")
	cStorePuts   = telemetry.Default.Counter("astro_store_puts_total", "Results written to the store.")
	hStoreGet    = telemetry.Default.Histogram("astro_store_get_seconds", "Store.Get latency (both tiers).", nil)
	hStorePut    = telemetry.Default.Histogram("astro_store_put_seconds", "Store.Put latency (memory + crash-safe disk write).", nil)

	// Bounded-store machinery: hot cache, disk caps, pins, compaction
	// (see bounded.go and DESIGN.md invariant 11).
	cHotHits            = telemetry.Default.Counter(`astro_store_hot_total{result="hit"}`, "Hot-cache lookups by outcome.")
	cHotMisses          = telemetry.Default.Counter(`astro_store_hot_total{result="miss"}`, "Hot-cache lookups by outcome.")
	cHotEvictions       = telemetry.Default.Counter("astro_store_hot_evictions_total", "Entries evicted from the hot in-memory cache.")
	gHotBytes           = telemetry.Default.Gauge("astro_store_hot_bytes", "Bytes resident in the hot in-memory cache.")
	cStoreDiskWrites    = telemetry.Default.Counter("astro_store_disk_writes_total", "Value files written to the disk tier (one per unique key).")
	cStorePutNoops      = telemetry.Default.Counter("astro_store_put_noops_total", "Puts of already-stored keys skipped without a disk write.")
	cStoreEvictions     = telemetry.Default.Counter("astro_store_evictions_total", "Disk-tier entries evicted to honour the byte cap.")
	gStoreDiskBytes     = telemetry.Default.Gauge("astro_store_disk_bytes", "Value bytes resident in the disk tier.")
	gStoreDiskKeys      = telemetry.Default.Gauge("astro_store_disk_keys", "Distinct keys resident in the disk tier.")
	gStorePinnedKeys    = telemetry.Default.Gauge("astro_store_pinned_keys", "Content keys currently pinned against eviction.")
	cStoreCompactions   = telemetry.Default.Counter("astro_store_compactions_total", "Shard index compactions completed.")
	cStoreCompactErrors = telemetry.Default.Counter("astro_store_compact_errors_total", "Shard index compactions that failed (previous index left in place).")

	// In-process pool economics.
	cPoolHit  = telemetry.Default.Counter(`astro_pool_cells_total{result="hit"}`, "Pool cells by outcome.")
	cPoolExec = telemetry.Default.Counter(`astro_pool_cells_total{result="executed"}`, "Pool cells by outcome.")
	cPoolErr  = telemetry.Default.Counter(`astro_pool_cells_total{result="error"}`, "Pool cells by outcome.")
	hPoolExec = telemetry.Default.Histogram("astro_pool_execute_seconds", "Fresh simulation latency in Pool.runOne (cache misses only).", nil)

	// Trained-agent cache.
	cTrainHit   = telemetry.Default.Counter(`astro_train_cells_total{result="hit"}`, "Training cells by outcome.")
	cTrainFresh = telemetry.Default.Counter(`astro_train_cells_total{result="trained"}`, "Training cells by outcome.")
	cTrainErr   = telemetry.Default.Counter(`astro_train_cells_total{result="error"}`, "Training cells by outcome.")
	hTrain      = telemetry.Default.Histogram("astro_train_seconds", "Fresh training-cell latency (cache misses only).", nil)

	// Work queue (coordinator side).
	cQEnqueued   = telemetry.Default.Counter("astro_queue_enqueued_total", "Cells accepted by WorkQueue.Enqueue.")
	cQLeased     = telemetry.Default.Counter("astro_queue_leases_total", "Cell leases granted (including re-issues).")
	cQDoneSim    = telemetry.Default.Counter(`astro_queue_completed_total{kind="sim"}`, "Cells completed by kind.")
	cQDoneTrain  = telemetry.Default.Counter(`astro_queue_completed_total{kind="train"}`, "Cells completed by kind.")
	cQRequeues   = telemetry.Default.Counter("astro_queue_requeues_total", "Lease expiries that re-issued a cell.")
	cQRenewals   = telemetry.Default.Counter("astro_queue_renewals_total", "Lease renewals granted.")
	cQRejects    = telemetry.Default.Counter("astro_queue_rejects_total", "Submitted results rejected by validation.")
	cQDuplicates = telemetry.Default.Counter("astro_queue_duplicates_total", "Duplicate submissions for already-done cells.")
	hQLeaseWait  = telemetry.Default.Histogram("astro_queue_lease_wait_seconds", "Enqueue-to-first-lease wait per cell.", nil)
	hQExecSim    = telemetry.Default.Histogram(`astro_queue_execute_seconds{kind="sim"}`, "Worker-reported execute span per completed cell, by kind.", nil)
	hQExecTrain  = telemetry.Default.Histogram(`astro_queue_execute_seconds{kind="train"}`, "Worker-reported execute span per completed cell, by kind.", nil)
	gQPending    = telemetry.Default.Gauge("astro_queue_pending", "Cells currently waiting for a lease.")
	gQLeased     = telemetry.Default.Gauge("astro_queue_leased", "Cells currently leased out.")
	gQWorkers    = telemetry.Default.Gauge("astro_queue_workers", "Workers that have ever contacted this queue.")

	// Flight recorder (the EventSink seam; see internal/journal).
	cQJournalEvents = telemetry.Default.Counter("astro_journal_events_total", "Lifecycle events recorded to the fleet journal.")
	cQJournalErrors = telemetry.Default.Counter("astro_journal_errors_total", "Journal appends that failed (events dropped; the queue is unaffected).")

	// Worker lifecycle transitions (draining, quarantine) and chaos seams.
	cQDrains         = telemetry.Default.Counter("astro_queue_worker_drains_total", "Workers flipped into the draining state.")
	cQResumes        = telemetry.Default.Counter("astro_queue_worker_resumes_total", "Drained or quarantined workers explicitly resumed.")
	cQQuarantines    = telemetry.Default.Counter("astro_queue_worker_quarantines_total", "Workers quarantined after repeated rejected submissions.")
	cQDrainRequeues  = telemetry.Default.Counter("astro_queue_drain_requeues_total", "Leases reclaimed because their holder drained past its deadline.")
	cQFaultsInjected = telemetry.Default.Counter(`astro_faults_injected_total{site="queue"}`, "Injected faults fired, by site.")

	// Worker side (meaningful in `astro worker` processes; also registered
	// on coordinators so the exposition schema is stable everywhere).
	cWLeaseErrs = telemetry.Default.Counter("astro_worker_lease_errors_total", "Coordinator-unreachable or HTTP-error lease attempts on this worker.")
	cWCells     = telemetry.Default.Counter("astro_worker_cells_total", "Cells executed by this worker process.")
	cWDrains    = telemetry.Default.Counter("astro_worker_drains_total", "Drain transitions of this worker process (SIGTERM or Drain call).")
	cWAbandoned = telemetry.Default.Counter("astro_worker_abandoned_total", "Cells abandoned without submission after the coordinator reported the lease lost.")
	cWFaults    = telemetry.Default.Counter(`astro_faults_injected_total{site="worker"}`, "Injected faults fired, by site.")

	// Compiled-program shipping (the bytecode tier crossing the wire).
	cRProgShipped = telemetry.Default.Counter("astro_program_ships_total", "Compiled programs attached to outgoing wire cells by the coordinator.")
	cWProgHits    = telemetry.Default.Counter("astro_worker_program_hits_total", "Shipped compiled programs decoded and used by this worker (recompilation skipped).")
	cWProgRejects = telemetry.Default.Counter("astro_worker_program_rejects_total", "Shipped compiled programs this worker refused (stale, corrupt, or mismatched); the cell fell back to a local compile.")
)

// shardGauge returns the occupancy gauge for shard i of a sharded store.
// One labeled gauge per shard index; stores sharing a shard count share
// gauges, which is fine — occupancy is a live reading, not an accumulator.
func shardGauge(i int) *telemetry.Gauge {
	return telemetry.Default.Gauge(
		fmt.Sprintf(`astro_store_shard_keys{shard="%02x"}`, i),
		"Distinct keys resident per shard (memory + disk index).")
}

package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// wireCells expands n distinct micro cells (one per seed) and wires them —
// the parallel-executor tests need more cells than one spec point yields.
func wireCells(t *testing.T, n int) []*WireJob {
	t.Helper()
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(100 + i)
	}
	spec := Spec{
		Benchmarks: []string{"micro"},
		Schedulers: []string{"default"},
		Seeds:      seeds,
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < n {
		t.Fatalf("spec expands to %d jobs, need %d", len(jobs), n)
	}
	wires := make([]*WireJob, n)
	for i := 0; i < n; i++ {
		w, err := jobs[i].Wire()
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
	}
	return wires
}

// TestJitteredBackoff pins the lease-failure backoff jitter: within ±20%
// of the exponential base, deterministic per worker ID, decorrelated
// across IDs (so a fleet does not retry in lockstep after a coordinator
// restart).
func TestJitteredBackoff(t *testing.T) {
	a1 := &Worker{ID: "w-a"}
	a2 := &Worker{ID: "w-a"}
	b := &Worker{ID: "w-b"}
	base := 100 * time.Millisecond
	sameID, crossID := 0, 0
	const rounds = 16
	for n := 1; n <= rounds; n++ {
		d := backoff(base, n)
		j1, j2, j3 := a1.jitteredBackoff(base, n), a2.jitteredBackoff(base, n), b.jitteredBackoff(base, n)
		if f := float64(j1) / float64(d); f < 0.79 || f > 1.21 {
			t.Fatalf("round %d: jitter factor %.3f outside ±20%%", n, f)
		}
		if j1 == j2 {
			sameID++
		}
		if j1 == j3 {
			crossID++
		}
	}
	if sameID != rounds {
		t.Fatalf("same worker ID diverged: %d/%d draws equal", sameID, rounds)
	}
	if crossID == rounds {
		t.Fatal("distinct worker IDs produced identical jitter schedules")
	}
	if d := backoff(time.Second, 50); d != 5*time.Second {
		t.Fatalf("backoff cap: %v", d)
	}
}

// TestSubmitRetriesTransientFailures: a coordinator hiccup (5xx) on result
// submission retries instead of discarding a computed simulation.
func TestSubmitRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ResultResponse{Status: CompleteAccepted})
	}))
	defer srv.Close()
	w := &Worker{Coordinator: srv.URL, ID: "w1"}
	st, err := w.submit(context.Background(), ResultSubmission{WorkerID: "w1", Key: strings.Repeat("a", 64)})
	if err != nil || st != CompleteAccepted {
		t.Fatalf("submit after transient failures: status %q, err %v", st, err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("submit made %d attempts, want 3", n)
	}
}

// TestSubmitGivesUpAfterThreeAttempts: a permanently failing coordinator
// surfaces an error after exactly the retry budget.
func TestSubmitGivesUpAfterThreeAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()
	w := &Worker{Coordinator: srv.URL, ID: "w1"}
	st, err := w.submit(context.Background(), ResultSubmission{WorkerID: "w1", Key: strings.Repeat("a", 64)})
	if err == nil || st != "" {
		t.Fatalf("permanent failure returned status %q, err %v", st, err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("submit made %d attempts, want 3", n)
	}
}

// TestSubmitDoesNotRetryRejection: a 422 is the coordinator's verdict, not
// a transient failure — one attempt, status passed through.
func TestSubmitDoesNotRetryRejection(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(ResultResponse{Status: CompleteRejected})
	}))
	defer srv.Close()
	w := &Worker{Coordinator: srv.URL, ID: "w1"}
	st, err := w.submit(context.Background(), ResultSubmission{WorkerID: "w1", Key: strings.Repeat("a", 64)})
	if err != nil || st != CompleteRejected {
		t.Fatalf("rejection round-trip: status %q, err %v", st, err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("rejected submission retried: %d attempts", n)
	}
}

// TestRenewLoopMarksLostLeases pins the worker half of the abandonment
// contract: a requested key the coordinator's (successful) renew response
// does not list is a lost lease and must be marked for the executors.
func TestRenewLoopMarksLostLeases(t *testing.T) {
	keyA, keyB := strings.Repeat("a", 64), strings.Repeat("b", 64)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(RenewResponse{Renewed: []string{keyA}}) // keyB has moved on
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lostCh := make(chan []string, 1)
	w := &Worker{Coordinator: srv.URL, ID: "w1"}
	go w.renewLoop(ctx, 5*time.Millisecond,
		func() []string { return []string{keyA, keyB} },
		func(keys []string) {
			select {
			case lostCh <- keys:
			default:
			}
		})
	select {
	case keys := <-lostCh:
		if len(keys) != 1 || keys[0] != keyB {
			t.Fatalf("marked lost: %v, want [%s]", keys, keyB)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("renew loop never reported the lost lease")
	}
}

// TestExecuteAbandonsLostLease pins the executor half: a cell whose lease
// was reported lost is computed (too late to save that) but never
// submitted — no double-submission for a cell another worker now owns.
func TestExecuteAbandonsLostLease(t *testing.T) {
	var submissions atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		submissions.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ResultResponse{Status: CompleteAccepted})
	}))
	defer srv.Close()
	cell := wireCells(t, 1)[0]
	var progErr string
	w := &Worker{Coordinator: srv.URL, ID: "w1", OnProgress: func(p Progress) { progErr = p.Err }}
	if err := w.execute(context.Background(), cell, time.Now(), func(string) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if n := submissions.Load(); n != 0 {
		t.Fatalf("abandoned cell was submitted %d times", n)
	}
	if !strings.Contains(progErr, "abandoned") {
		t.Fatalf("progress hook saw %q, want an abandonment", progErr)
	}
}

// concProbe measures executor overlap through the fault seam: each
// FaultOpExecute consultation holds a slot for a moment and records the
// concurrent high-water mark (and injects nothing).
type concProbe struct {
	mu        sync.Mutex
	cur, peak int
}

func (p *concProbe) Fault(op FaultOp, workerID, key string) Fault {
	if op != FaultOpExecute {
		return FaultNone
	}
	p.mu.Lock()
	p.cur++
	if p.cur > p.peak {
		p.peak = p.cur
	}
	p.mu.Unlock()
	time.Sleep(20 * time.Millisecond) // hold the slot so executors overlap
	p.mu.Lock()
	p.cur--
	p.mu.Unlock()
	return FaultNone
}

func (p *concProbe) Peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// TestParallelExecutorsOverlap: `-j N` must actually fan a batch out — at
// least two cells of one lease in flight at once — and still complete
// every cell exactly once.
func TestParallelExecutorsOverlap(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	store := NewMemStore()
	srv := startCoordinator(t, q, store)
	probe := &concProbe{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Coordinator: srv.URL + "/work",
		ID:          "w-par",
		Parallel:    4,
		Max:         8,
		Poll:        5 * time.Millisecond,
		Faults:      probe,
	}
	go w.Run(ctx)

	wires := wireCells(t, 8)
	var wg sync.WaitGroup
	var errs atomic.Int64
	for _, wire := range wires {
		wg.Add(1)
		q.Enqueue(wire, func(data []byte, err error) {
			if err != nil {
				errs.Add(1)
			}
			wg.Done()
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallel batch never completed")
	}
	if n := errs.Load(); n != 0 {
		t.Fatalf("%d cells errored", n)
	}
	if peak := probe.Peak(); peak < 2 {
		t.Fatalf("executor concurrency peaked at %d; -j 4 never overlapped", peak)
	}
	if st := q.Stats(); st.Done != 8 {
		t.Fatalf("queue done %d, want 8", st.Done)
	}
}

// TestWorkerDrainFinishesHeldBatch: Drain mid-batch finishes and submits
// everything the worker holds, then Run returns nil with zero held leases;
// unleased cells stay pending for the rest of the fleet, and the
// coordinator learns the state (best-effort notification).
func TestWorkerDrainFinishesHeldBatch(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	store := NewMemStore()
	srv := startCoordinator(t, q, store)
	w := &Worker{Coordinator: srv.URL + "/work", ID: "w-drain", Max: 3, Poll: 5 * time.Millisecond}
	var once sync.Once
	w.OnProgress = func(Progress) { once.Do(w.Drain) }

	for _, wire := range wireCells(t, 6) {
		q.Enqueue(wire, func([]byte, error) {})
	}
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run(context.Background()) }()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drained worker never exited")
	}
	if !w.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	st := q.Stats()
	if st.Done != 3 || st.Pending != 3 {
		t.Fatalf("after drain: done %d pending %d, want 3/3 (held batch finished, rest left)", st.Done, st.Pending)
	}
	if row := workerRow(t, st, "w-drain"); row.Leased != 0 {
		t.Fatalf("drained worker still holds %d leases", row.Leased)
	}
	// The POST /drain notification is async; the coordinator-side state
	// must land shortly after.
	deadline := time.Now().Add(5 * time.Second)
	for workerRow(t, q.Stats(), "w-drain").State != WorkerDraining {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never saw the drain notification")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInjectedCrashStopsWorker: FaultCrash kills Run with ErrInjectedCrash
// before anything is submitted; the held leases are left to expire like a
// real worker death.
func TestInjectedCrashStopsWorker(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	store := NewMemStore()
	srv := startCoordinator(t, q, store)
	for _, wire := range wireCells(t, 2) {
		q.Enqueue(wire, func([]byte, error) {})
	}
	w := &Worker{
		Coordinator: srv.URL + "/work",
		ID:          "w-crash",
		Max:         2,
		Poll:        5 * time.Millisecond,
		Faults:      &FaultSchedule{Seed: 1, Crash: 1},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Run(ctx); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v", err)
	}
	if st := q.Stats(); st.Done != 0 {
		t.Fatalf("crashed worker completed %d cells", st.Done)
	}
}

// TestFaultScheduleDeterministic: the seeded schedule depends only on the
// (op, worker, key, occurrence) tuple — two instances with the same seed
// agree draw for draw, and the zero value never fires.
func TestFaultScheduleDeterministic(t *testing.T) {
	mk := func() *FaultSchedule {
		return &FaultSchedule{Seed: 9, Crash: 0.1, Corrupt: 0.2, Drop: 0.2, StallRenew: 0.3, DropComplete: 0.3}
	}
	a, b := mk(), mk()
	seen := map[Fault]bool{}
	for i := 0; i < 64; i++ {
		for _, op := range []FaultOp{FaultOpExecute, FaultOpRenew, FaultOpComplete} {
			key := strings.Repeat("0123456789abcdef"[i%16:i%16+1], 64)
			fa, fb := a.Fault(op, "w1", key), b.Fault(op, "w1", key)
			if fa != fb {
				t.Fatalf("draw %d/%s diverged: %v != %v", i, op, fa, fb)
			}
			seen[fa] = true
		}
	}
	if len(seen) < 3 {
		t.Fatalf("schedule fired only %d distinct outcomes over 192 draws; hash not spreading", len(seen))
	}
	var zero FaultSchedule
	for i := 0; i < 32; i++ {
		if f := zero.Fault(FaultOpExecute, "w1", "k"); f != FaultNone {
			t.Fatalf("zero-value schedule fired %v", f)
		}
	}
}

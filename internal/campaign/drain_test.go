package campaign

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// workerRow finds one worker's status row in a stats snapshot.
func workerRow(t *testing.T, st QueueStats, id string) WorkerStatus {
	t.Helper()
	for _, w := range st.Workers {
		if w.ID == id {
			return w
		}
	}
	t.Fatalf("no worker %q in %+v", id, st.Workers)
	return WorkerStatus{}
}

// TestDrainStopsLeasingFinishesHeld pins the drain contract: a draining
// worker gets no new cells, but its held leases still renew and its valid
// results still complete cells; whatever it still holds past the drain
// deadline is requeued for the rest of the fleet; Resume reactivates it.
func TestDrainStopsLeasingFinishesHeld(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	now := fakeClock(q)
	wires := wireJobs(t, 2)
	var mu sync.Mutex
	finished := map[string]bool{}
	for _, w := range wires {
		key := w.Key
		q.Enqueue(w, func(data []byte, err error) {
			mu.Lock()
			finished[key] = err == nil
			mu.Unlock()
		})
	}

	if got := len(q.Lease("w1", len(wires))); got != len(wires) {
		t.Fatalf("leased %d cells, want %d", got, len(wires))
	}
	ws := q.Drain("w1", 10*time.Second)
	if ws.State != WorkerDraining || ws.Leased != len(wires) {
		t.Fatalf("drain snapshot: %+v", ws)
	}
	if cells := q.Lease("w1", 10); cells != nil {
		t.Fatalf("draining worker leased %d new cells", len(cells))
	}

	// Held leases keep renewing and completing while draining.
	if renewed := q.Renew("w1", []string{wires[0].Key}); len(renewed) != 1 {
		t.Fatalf("draining worker could not renew its held lease: %v", renewed)
	}
	if st := q.Complete("w1", wires[0].Key, validResult(t, wires[0]), ""); st != CompleteAccepted {
		t.Fatalf("draining worker's valid result: %v", st)
	}
	mu.Lock()
	ok := finished[wires[0].Key]
	mu.Unlock()
	if !ok {
		t.Fatal("waiter did not see the draining worker's result")
	}

	// Past the drain deadline the leftover lease is reclaimed — even
	// though it was renewed and is nowhere near the TTL.
	*now = now.Add(11 * time.Second)
	q.Sweep()
	if row := workerRow(t, q.Stats(), "w1"); row.Leased != 0 || row.State != WorkerDraining {
		t.Fatalf("after deadline: %+v", row)
	}
	if st := q.Stats(); st.Requeues == 0 || st.Pending != 1 {
		t.Fatalf("leftover cell not requeued: %+v", st)
	}
	if got := len(q.Lease("w2", 10)); got != 1 {
		t.Fatalf("fleet leased %d reclaimed cells, want 1", got)
	}

	// Resume closes the loop: the worker leases again.
	if ws := q.Resume("w1"); ws.State != WorkerActive {
		t.Fatalf("resume left state %q", ws.State)
	}
	q.Enqueue(wireTrainCell(t, 77), func([]byte, error) {})
	if got := len(q.Lease("w1", 10)); got != 1 {
		t.Fatalf("resumed worker leased %d cells, want 1", got)
	}
}

// TestDrainUnknownWorkerPreRegisters: draining a worker the queue has
// never seen registers it draining, so an operator can fence off a worker
// before it first connects.
func TestDrainUnknownWorkerPreRegisters(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	q.Enqueue(wireJobs(t, 1)[0], func([]byte, error) {})
	if ws := q.Drain("ghost", 0); ws.State != WorkerDraining {
		t.Fatalf("pre-drain state %q", ws.State)
	}
	if cells := q.Lease("ghost", 1); cells != nil {
		t.Fatalf("pre-drained worker leased %d cells", len(cells))
	}
}

// TestQuarantineAfterRepeatedRejects pins the circuit breaker: a worker
// whose submissions repeatedly fail validation stops receiving leases,
// while the poisoned cell survives (healthy workers finish it) and Resume
// closes the breaker.
func TestQuarantineAfterRepeatedRejects(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	q.SetMaxAttempts(10) // the garbage must not exhaust the cell
	wire := wireJobs(t, 1)[0]
	var got []byte
	q.Enqueue(wire, func(data []byte, err error) {
		if err == nil {
			got = data
		}
	})

	for i := 0; i < 3; i++ {
		if cells := q.Lease("bad", 1); len(cells) != 1 {
			t.Fatalf("round %d: leased %d cells", i, len(cells))
		}
		if st := q.Complete("bad", wire.Key, []byte("garbage"), ""); st != CompleteRejected {
			t.Fatalf("round %d: garbage was %v", i, st)
		}
	}
	row := workerRow(t, q.Stats(), "bad")
	if row.State != WorkerQuarantined || row.Rejects != 3 {
		t.Fatalf("after 3 rejects: %+v", row)
	}
	if cells := q.Lease("bad", 1); cells != nil {
		t.Fatalf("quarantined worker leased %d cells", len(cells))
	}

	// The cell is still alive for the rest of the fleet.
	if cells := q.Lease("good", 1); len(cells) != 1 {
		t.Fatal("healthy worker could not lease the poisoned cell")
	}
	if st := q.Complete("good", wire.Key, validResult(t, wire), ""); st != CompleteAccepted {
		t.Fatalf("healthy completion: %v", st)
	}
	if got == nil {
		t.Fatal("waiter never saw the healthy result")
	}

	if ws := q.Resume("bad"); ws.State != WorkerActive || ws.Rejects != 0 {
		t.Fatalf("resume: %+v", ws)
	}
}

// TestQuarantineCountsOnlyValidationRejects: honest execution failures
// (worker reports an error) must not trip the breaker — they re-queue the
// cell but say nothing about the worker's integrity.
func TestQuarantineCountsOnlyValidationRejects(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	q.SetMaxAttempts(100)
	wire := wireJobs(t, 1)[0]
	q.Enqueue(wire, func([]byte, error) {})
	for i := 0; i < 10; i++ {
		if cells := q.Lease("honest", 1); len(cells) != 1 {
			t.Fatalf("round %d: no lease", i)
		}
		q.Complete("honest", wire.Key, nil, "module decode failed")
	}
	row := workerRow(t, q.Stats(), "honest")
	if row.State != WorkerActive || row.Rejects != 0 {
		t.Fatalf("honest failures tripped quarantine: %+v", row)
	}
}

// TestRenewUnknownKeysNotRenewed pins the coordinator half of the
// abandonment contract: keys the queue no longer holds for this worker —
// done cells, never-enqueued keys — are absent from the renew response,
// which is what tells the worker to abandon rather than double-submit.
func TestRenewUnknownKeysNotRenewed(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	wire := wireJobs(t, 1)[0]
	q.Enqueue(wire, func([]byte, error) {})
	if cells := q.Lease("w1", 1); len(cells) != 1 {
		t.Fatal("no lease")
	}
	if st := q.Complete("w1", wire.Key, validResult(t, wire), ""); st != CompleteAccepted {
		t.Fatalf("complete: %v", st)
	}
	never := strings.Repeat("a", 64)
	if renewed := q.Renew("w1", []string{wire.Key, never}); len(renewed) != 0 {
		t.Fatalf("renewed keys the queue no longer holds: %v", renewed)
	}
}

// TestStartSweeperRequeuesWithoutTraffic: with no worker polling, only the
// background sweeper can notice an expired lease — the ticker must requeue
// it by itself, and stop must be idempotent.
func TestStartSweeperRequeuesWithoutTraffic(t *testing.T) {
	q := NewWorkQueue(50 * time.Millisecond)
	q.Enqueue(wireJobs(t, 1)[0], func([]byte, error) {})
	if cells := q.Lease("w1", 1); len(cells) != 1 {
		t.Fatal("no lease")
	}
	stop := q.StartSweeper(10 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Requeues == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweeper never requeued the expired lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := q.Stats(); st.Pending != 1 || st.Leased != 0 {
		t.Fatalf("after sweep: %+v", st)
	}
	stop()
	stop() // idempotent
}

// dropFirstComplete is a FaultPolicy for the coordinator seam: the first
// otherwise-acceptable result submission is acked and discarded.
type dropFirstComplete struct {
	mu    sync.Mutex
	fired bool
}

func (d *dropFirstComplete) Fault(op FaultOp, workerID, key string) Fault {
	if op != FaultOpComplete {
		return FaultNone
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fired {
		return FaultNone
	}
	d.fired = true
	return FaultDrop
}

// TestQueueDropsAckedResultThenRecovers: the "coordinator lost the result
// after the ack" fault. The worker moves on believing the cell done; the
// lease expires on schedule, the cell re-issues, and a second execution
// completes it — no waiter ever sees the dropped bytes.
func TestQueueDropsAckedResultThenRecovers(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	now := fakeClock(q)
	q.Faults = &dropFirstComplete{}
	wire := wireJobs(t, 1)[0]
	data := validResult(t, wire)
	got := make(chan []byte, 1)
	q.Enqueue(wire, func(d []byte, err error) {
		if err == nil {
			got <- d
		}
	})
	if cells := q.Lease("w1", 1); len(cells) != 1 {
		t.Fatal("no lease")
	}
	if st := q.Complete("w1", wire.Key, data, ""); st != CompleteAccepted {
		t.Fatalf("dropped submission acked as %v", st)
	}
	select {
	case <-got:
		t.Fatal("dropped result reached the waiter")
	default:
	}
	if st := q.Stats(); st.Done != 0 || st.Leased != 1 {
		t.Fatalf("after drop: %+v", st)
	}

	*now = now.Add(2 * time.Minute) // lease expires
	if cells := q.Lease("w2", 1); len(cells) != 1 {
		t.Fatal("expired cell did not re-issue")
	}
	if st := q.Complete("w2", wire.Key, data, ""); st != CompleteAccepted {
		t.Fatalf("recovery completion: %v", st)
	}
	select {
	case d := <-got:
		if string(d) != string(data) {
			t.Fatal("recovered bytes differ")
		}
	default:
		t.Fatal("waiter never saw the recovered result")
	}
}

package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"astro/internal/journal"
)

// TestQueueJournalReplayMatchesStats scripts a full queue lifecycle —
// enqueue, lease, renew, complete, reject, worker error, expiry,
// attempt exhaustion, duplicate, drain/resume, cancel — against a real
// journal.Writer, then replays the journal and pins the reconstructed
// state to the live queue's Stats(), counter for counter. This is the
// equality `astro journal replay` relies on: the flight recorder is a
// faithful account of the scheduler, not an approximation.
func TestQueueJournalReplayMatchesStats(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()

	q := NewWorkQueue(time.Minute)
	now := fakeClock(q)
	q.Events = jw
	store := NewMemStore()
	q.Store = store

	sims := wireJobs(t, 2)
	a, b := sims[0], sims[1]
	c := wireTrainCell(t, 41)

	noop := func([]byte, error) {}
	q.Enqueue(a, noop)
	q.Enqueue(b, noop)
	q.Enqueue(c, noop)

	if got := q.Lease("w1", 2); len(got) != 2 {
		t.Fatalf("w1 leased %d cells, want 2", len(got))
	}
	if got := q.Lease("w2", 1); len(got) != 1 || got[0].Key != c.Key {
		t.Fatalf("w2 lease: %+v", got)
	}
	if renewed := q.Renew("w1", []string{a.Key}); len(renewed) != 1 {
		t.Fatalf("renewed %v", renewed)
	}

	// w1 finishes A; w2 burns C's attempts: one rejected submission, one
	// worker error, then expiry on the third lease exhausts the cell.
	if st := q.Complete("w1", a.Key, validResult(t, a), ""); st != CompleteAccepted {
		t.Fatalf("complete A: %v", st)
	}
	if st := q.Complete("w2", c.Key, []byte("junk"), ""); st != CompleteRejected {
		t.Fatalf("garbage for C: %v", st)
	}
	if got := q.Lease("w2", 1); len(got) != 1 {
		t.Fatalf("re-lease C: %+v", got)
	}
	if st := q.Complete("w2", c.Key, nil, "boom"); st != CompleteAccepted {
		t.Fatalf("worker error for C: %v", st)
	}
	if got := q.Lease("w2", 1); len(got) != 1 {
		t.Fatalf("third lease of C: %+v", got)
	}

	// Everything leased expires: B (attempt 1) requeues, C (attempt 3)
	// fails for good.
	*now = now.Add(2 * time.Minute)
	q.Sweep()

	if got := q.Lease("w3", 5); len(got) != 1 || got[0].Key != b.Key {
		t.Fatalf("w3 lease after sweep: %+v", got)
	}
	if st := q.Complete("w3", b.Key, validResult(t, b), ""); st != CompleteAccepted {
		t.Fatalf("complete B: %v", st)
	}
	// Late duplicate of A, a drain/resume cycle, and a cancelled cell.
	if st := q.Complete("w3", a.Key, validResult(t, a), ""); st != CompleteDuplicate {
		t.Fatalf("duplicate A: %v", st)
	}
	q.Drain("w2", 0)
	q.Resume("w2")
	cancel := q.Enqueue(wireTrainCell(t, 42), noop)
	if !cancel() {
		t.Fatal("cancel of fresh cell refused")
	}

	events, err := journal.ReadSince(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := journal.Replay(events)
	live := q.Stats()

	if rep.Pending != live.Pending || rep.Leased != live.Leased || rep.Done != live.Done {
		t.Fatalf("population mismatch: replay %d/%d/%d, live %d/%d/%d",
			rep.Pending, rep.Leased, rep.Done, live.Pending, live.Leased, live.Done)
	}
	if rep.Requeues != live.Requeues || rep.Rejects != live.Rejects ||
		rep.Duplicates != live.Duplicates || rep.Renewals != live.Renewals {
		t.Fatalf("counter mismatch: replay {req %d rej %d dup %d ren %d}, live {req %d rej %d dup %d ren %d}",
			rep.Requeues, rep.Rejects, rep.Duplicates, rep.Renewals,
			live.Requeues, live.Rejects, live.Duplicates, live.Renewals)
	}
	if rep.Completes != 2 || rep.Fails != 1 || rep.Enqueued != 4 || rep.Cancels != 1 {
		t.Fatalf("replay extras: %+v", rep)
	}
	for _, lw := range live.Workers {
		rw := rep.Workers[lw.ID]
		if rw == nil {
			t.Fatalf("worker %s missing from replay", lw.ID)
		}
		if rw.Completed != lw.Completed || rw.Errors != lw.Errors ||
			rw.Rejects != lw.Rejects || rw.State != lw.State {
			t.Fatalf("worker %s: replay %+v, live %+v", lw.ID, rw, lw)
		}
	}

	// The audit invariant: every journaled completion is banked.
	for _, key := range rep.CompletedKeys() {
		if _, ok := store.Get(key); !ok {
			t.Fatalf("journaled completion %s not banked", key)
		}
	}
}

// TestJournalSinkErrorsAreInert pins invariant 10's failure half: a sink
// whose Record always fails must not change any queue outcome.
func TestJournalSinkErrorsAreInert(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	q.Events = failingSink{}
	w := wireJobs(t, 1)[0]
	donec := make(chan error, 1)
	q.Enqueue(w, func(_ []byte, err error) { donec <- err })
	if got := q.Lease("w1", 1); len(got) != 1 {
		t.Fatalf("lease under failing sink: %+v", got)
	}
	if st := q.Complete("w1", w.Key, validResult(t, w), ""); st != CompleteAccepted {
		t.Fatalf("complete under failing sink: %v", st)
	}
	if err := <-donec; err != nil {
		t.Fatalf("waiter saw error under failing sink: %v", err)
	}
}

type failingSink struct{}

func (failingSink) Record(journal.Event) (uint64, error) {
	return 0, errors.New("sink down")
}

// TestWorkJournalEndpoint drives GET /journal: cursor paging against a
// live writer, and 404 when journaling is off.
func TestWorkJournalEndpoint(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	q.Events = jw
	srv := httptest.NewServer(WorkHandler(q, NewMemStore()))
	defer srv.Close()

	w := wireJobs(t, 1)[0]
	q.Enqueue(w, func([]byte, error) {})
	q.Lease("w1", 1)

	page := getJournalPage(t, srv.URL+"/journal")
	if len(page.Events) != 2 || page.Events[0].Type != journal.EvEnqueue || page.Events[1].Type != journal.EvLease {
		t.Fatalf("journal page: %+v", page)
	}
	if page.NextCursor != page.Events[1].Seq {
		t.Fatalf("next_cursor %d, want %d", page.NextCursor, page.Events[1].Seq)
	}
	// Tail from the cursor: empty page, cursor unchanged.
	tail := getJournalPage(t, fmt.Sprintf("%s/journal?cursor=%d", srv.URL, page.NextCursor))
	if len(tail.Events) != 0 || tail.NextCursor != page.NextCursor {
		t.Fatalf("tail page: %+v", tail)
	}
	// n caps the page.
	one := getJournalPage(t, srv.URL+"/journal?n=1")
	if len(one.Events) != 1 || one.NextCursor != one.Events[0].Seq {
		t.Fatalf("capped page: %+v", one)
	}

	// No sink (or a write-only one): the endpoint says so instead of
	// serving an empty journal that looks like a quiet fleet.
	qOff := NewWorkQueue(time.Minute)
	srvOff := httptest.NewServer(WorkHandler(qOff, NewMemStore()))
	defer srvOff.Close()
	resp, err := srvOff.Client().Get(srvOff.URL + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("journal without sink: %d, want 404", resp.StatusCode)
	}
}

func getJournalPage(t *testing.T, url string) JournalPage {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var page JournalPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestJournalSegmentFiles sanity-checks the on-disk shape the queue
// produces: JSONL segments under the journal dir, readable cold (the
// postmortem path reads them with no writer alive).
func TestJournalSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewWorkQueue(time.Minute)
	fakeClock(q)
	q.Events = jw
	w := wireJobs(t, 1)[0]
	q.Enqueue(w, func([]byte, error) {})
	q.Lease("w1", 1)
	q.Complete("w1", w.Key, validResult(t, w), "")
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments in %s (err %v)", dir, err)
	}
	events, err := journal.ReadSince(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("cold read got %d events, want 3 (enqueue, lease, complete)", len(events))
	}
}

package campaign

import "astro/internal/journal"

// EventSink is the observer seam the flight recorder plugs into the
// WorkQueue: the queue calls Record once per lifecycle transition —
// enqueue, lease, renew, complete, reject, requeue, expire, drain,
// quarantine, fault injection. *journal.Writer satisfies it directly.
//
// Emission is fire-and-forget by design (DESIGN.md invariant 10): a
// sink error is counted and dropped, never surfaced to the queue
// operation that triggered it, so a full disk degrades observability
// without touching campaign outputs.
type EventSink interface {
	Record(journal.Event) (uint64, error)
}

// JournalReader is the optional read side of an EventSink. When the
// queue's sink also satisfies it (*journal.Writer does), the
// coordinator serves GET /work/journal from it — cursor-paged, so a
// poller (or astro journal replay pointed at a live coordinator's
// dump) resumes exactly where it left off.
type JournalReader interface {
	ReadSince(cursor uint64, max int) ([]journal.Event, error)
}

// JournalPage is the GET /work/journal payload. NextCursor is the last
// event's sequence number (or the request cursor when the page is
// empty): feed it back as ?cursor= to tail the journal.
type JournalPage struct {
	Events     []journal.Event `json:"events"`
	NextCursor uint64          `json:"next_cursor"`
}

// emit records one lifecycle event on the configured sink. Most call
// sites hold q.mu, which is what gives the journal its strict event
// ordering; the documented exceptions (EvComplete, EvBank, EvFault)
// are emitted outside the lock and replay order-tolerantly.
func (q *WorkQueue) emit(ev journal.Event) {
	if q.Events == nil {
		return
	}
	if _, err := q.Events.Record(ev); err != nil {
		cQJournalErrors.Inc()
		return
	}
	cQJournalEvents.Inc()
}

package campaign

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// valFor makes deterministic value bytes for testKey(i), sized so a
// handful of entries cross small byte caps.
func valFor(i, size int) []byte {
	return bytes.Repeat([]byte{byte('a' + i%26)}, size)
}

// diskBytesOf walks a plain store directory and sums the value files —
// the ground truth the accounting property checks against.
func diskBytesOf(t *testing.T, dir string) (int64, int) {
	t.Helper()
	keys, err := scanStoreDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, k := range keys {
		fi, err := os.Stat(filepath.Join(dir, k[:2], k+".json"))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total, len(keys)
}

// TestStorePutSingleDiskWrite pins the put-dedup fix: one unique key
// costs exactly one disk write, no matter how many times it is Put —
// including Puts from a later process over the same directory.
func TestStorePutSingleDiskWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(1), valFor(1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(testKey(2), valFor(2, 64)); err != nil {
		t.Fatal(err)
	}
	occ := s.Occupancy()
	if occ.DiskWrites != 2 {
		t.Fatalf("disk writes = %d, want exactly 2 (one per unique key)", occ.DiskWrites)
	}
	if occ.PutNoops != 4 {
		t.Fatalf("put noops = %d, want 4", occ.PutNoops)
	}

	// A fresh process does not rewrite either: the Stat probe discovers
	// the prior entry and skips the temp-file + fsync + rename churn.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(testKey(1), valFor(1, 64)); err != nil {
		t.Fatal(err)
	}
	occ2 := s2.Occupancy()
	if occ2.DiskWrites != 0 || occ2.PutNoops != 1 {
		t.Fatalf("reopened store: writes=%d noops=%d, want 0/1", occ2.DiskWrites, occ2.PutNoops)
	}
}

// TestStoreCapRequiresDisk: a byte cap on a memory-only store would evict
// authoritative bytes; both constructors must refuse.
func TestStoreCapRequiresDisk(t *testing.T) {
	if _, err := NewStoreWith("", StoreConfig{MaxBytes: 1 << 20}); err == nil {
		t.Fatal("memory-only store accepted a byte cap")
	}
	if _, err := NewShardedStoreWith("", 4, StoreConfig{MaxBytes: 1 << 20}); err == nil {
		t.Fatal("memory-only sharded store accepted a byte cap")
	}
}

// TestBoundedStorePinnedNeverEvicted floods a capped store far past its
// cap and asserts the pinned key rides out every eviction wave — then
// loses that protection the moment it is unpinned.
func TestBoundedStorePinnedNeverEvicted(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreWith(dir, StoreConfig{MaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pinKey := testKey(0)
	if err := s.Put(pinKey, valFor(0, 256)); err != nil {
		t.Fatal(err)
	}
	s.Pin(pinKey)
	for i := 1; i <= 50; i++ {
		if err := s.Put(testKey(i), valFor(i, 256)); err != nil {
			t.Fatal(err)
		}
	}
	occ := s.Occupancy()
	if occ.Evictions == 0 {
		t.Fatal("no evictions despite 50 puts against a 4-entry cap")
	}
	if got, ok := s.Get(pinKey); !ok || !bytes.Equal(got, valFor(0, 256)) {
		t.Fatalf("pinned key evicted or corrupted (ok=%v)", ok)
	}
	if _, err := os.Stat(s.path(pinKey)); err != nil {
		t.Fatalf("pinned key's file gone: %v", err)
	}
	if occ.PinnedKeys != 1 || occ.PinnedBytes != 256 {
		t.Fatalf("occupancy pins = %d keys / %d bytes, want 1/256", occ.PinnedKeys, occ.PinnedBytes)
	}

	s.Unpin(pinKey)
	for i := 51; i <= 100; i++ {
		if err := s.Put(testKey(i), valFor(i, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(s.path(pinKey)); err == nil {
		t.Fatal("unpinned cold key survived 50 more puts against a 4-entry cap")
	}
}

// TestBoundedStoreOversizedValueDoesNotWipeShard: a value bigger than
// the tier's whole cap cannot fit even with every peer evicted, so
// banking it would destroy the shard's cache for nothing. The store must
// refuse it up front — peers untouched, the refusal counted as an
// eviction (the key recomputes like any evicted one) — unless the key is
// pinned, in which case it is banked regardless and holds the store over
// cap exactly like a pinned eviction survivor.
func TestBoundedStoreOversizedValueDoesNotWipeShard(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreWith(dir, StoreConfig{MaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Put(testKey(i), valFor(i, 256)); err != nil {
			t.Fatal(err)
		}
	}
	big := testKey(100)
	if err := s.Put(big, valFor(100, 2048)); err != nil {
		t.Fatal(err)
	}
	occ := s.Occupancy()
	if occ.DiskKeys != 3 || occ.DiskBytes != 768 {
		t.Fatalf("peers wiped by an oversized put: %d keys / %d bytes, want 3/768", occ.DiskKeys, occ.DiskBytes)
	}
	if occ.Evictions != 1 {
		t.Fatalf("oversized refusal counted %d evictions, want 1", occ.Evictions)
	}
	if _, err := os.Stat(s.path(big)); err == nil {
		t.Fatal("oversized value landed on disk despite exceeding the whole cap")
	}
	for i := 1; i <= 3; i++ {
		if got, ok := s.Get(testKey(i)); !ok || !bytes.Equal(got, valFor(i, 256)) {
			t.Fatalf("peer %d lost or corrupted after oversized put (ok=%v)", i, ok)
		}
	}

	// Pinned oversized values are snapshots a live campaign depends on:
	// banked regardless, store over cap, pins reported.
	pinnedBig := testKey(101)
	s.Pin(pinnedBig)
	if err := s.Put(pinnedBig, valFor(101, 2048)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(pinnedBig); !ok || !bytes.Equal(got, valFor(101, 2048)) {
		t.Fatalf("pinned oversized value not served back (ok=%v)", ok)
	}
	if _, err := os.Stat(s.path(pinnedBig)); err != nil {
		t.Fatalf("pinned oversized value not on disk: %v", err)
	}
	if occ := s.Occupancy(); occ.DiskBytes <= occ.CapBytes {
		t.Fatalf("pinned oversized value should hold the store over cap: %+v", occ)
	}
}

// TestBoundedStoreReopenHonorsLoweredCap: a directory written unbounded,
// reopened with a cap below its contents, evicts down to the cap at open.
func TestBoundedStoreReopenHonorsLoweredCap(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(testKey(i), valFor(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := NewStoreWith(dir, StoreConfig{MaxBytes: 500})
	if err != nil {
		t.Fatal(err)
	}
	occ := s2.Occupancy()
	if occ.DiskBytes > 500 {
		t.Fatalf("reopened store over cap: %d > 500", occ.DiskBytes)
	}
	if bytesOnDisk, _ := diskBytesOf(t, dir); bytesOnDisk != occ.DiskBytes {
		t.Fatalf("accounting %d != %d bytes actually on disk", occ.DiskBytes, bytesOnDisk)
	}
}

// TestBoundedStoreProperty is the seeded eviction + refcount state
// machine: randomized interleavings of Put/Get/Pin/Unpin against a
// capped store, with a shadow model, asserting after every step that
//
//   - pinned keys are never evicted (their bytes remain readable and
//     exactly canonical);
//   - Get never returns wrong bytes — hit-with-reference-bytes or miss
//     are the only outcomes;
//   - the store's byte accounting equals the bytes actually on disk;
//   - occupancy exceeds the cap only when pinned bytes force it.
func TestBoundedStoreProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			const cap = 2000
			s, err := NewStoreWith(dir, StoreConfig{MaxBytes: cap, HotBytes: 700})
			if err != nil {
				t.Fatal(err)
			}
			const universe = 24
			ref := map[string][]byte{} // canonical bytes per key ever Put
			pinned := map[string]int{} // shadow refcounts
			keyOf := func(i int) string { return testKey(i) }

			for step := 0; step < 600; step++ {
				i := rng.Intn(universe)
				key := keyOf(i)
				switch op := rng.Intn(10); {
				case op < 4: // Put
					val := valFor(i, 50+rng.Intn(400))
					if prev, ok := ref[key]; ok {
						val = prev // content-addressed: same key, same bytes
					}
					if err := s.Put(key, val); err != nil {
						t.Fatal(err)
					}
					ref[key] = val
				case op < 7: // Get
					got, ok := s.Get(key)
					if ok && !bytes.Equal(got, ref[key]) {
						t.Fatalf("step %d: Get(%s) returned wrong bytes", step, key[:8])
					}
				case op < 9: // Pin
					s.Pin(key)
					pinned[key]++
				default: // Unpin
					s.Unpin(key)
					if pinned[key] > 0 {
						pinned[key]--
					}
				}

				// Invariant: every pinned key that has bytes keeps them.
				for k, n := range pinned {
					if n <= 0 || ref[k] == nil {
						continue
					}
					if _, err := os.Stat(s.path(k)); err != nil {
						// Only an eviction could remove it; pinning after
						// eviction legally finds nothing — but a key pinned
						// while present must stay. Distinguish via the
						// store's own view: if it was ever evicted while
						// pinned the Get would now recompute differently,
						// so assert through Get.
						if got, ok := s.Get(k); ok && !bytes.Equal(got, ref[k]) {
							t.Fatalf("step %d: pinned key %s corrupted", step, k[:8])
						}
					}
				}
			}

			// Final accounting: model vs disk vs store.
			occ := s.Occupancy()
			bytesOnDisk, keysOnDisk := diskBytesOf(t, dir)
			if occ.DiskBytes != bytesOnDisk || occ.DiskKeys != keysOnDisk {
				t.Fatalf("accounting diverged: store says %d bytes/%d keys, disk holds %d/%d",
					occ.DiskBytes, occ.DiskKeys, bytesOnDisk, keysOnDisk)
			}
			if occ.DiskBytes > cap && occ.PinnedBytes <= cap {
				t.Fatalf("over cap (%d > %d) without pinned pressure (%d pinned bytes)",
					occ.DiskBytes, cap, occ.PinnedBytes)
			}
			// Every surviving entry is byte-exact.
			liveKeys, err := scanStoreDir(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range liveKeys {
				got, ok := s.Get(k)
				if !ok || !bytes.Equal(got, ref[k]) {
					t.Fatalf("surviving key %s corrupted (ok=%v)", k[:8], ok)
				}
			}
		})
	}
}

// TestShardedBoundedProperty runs the same state machine through the
// sharded front door with compaction interleaved: the per-shard caps,
// the shared hot cache and the shared pin ledger must uphold the same
// invariants, and Compact must never lose a live key from the index.
func TestShardedBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dir := t.TempDir()
	s, err := NewShardedStoreWith(dir, 4, StoreConfig{MaxBytes: 4000, HotBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string][]byte{}
	for step := 0; step < 500; step++ {
		i := rng.Intn(40)
		key := testKey(i)
		switch op := rng.Intn(12); {
		case op < 5:
			val := valFor(i, 50+rng.Intn(300))
			if prev, ok := ref[key]; ok {
				val = prev
			}
			if err := s.Put(key, val); err != nil {
				t.Fatal(err)
			}
			ref[key] = val
		case op < 9:
			if got, ok := s.Get(key); ok && !bytes.Equal(got, ref[key]) {
				t.Fatalf("step %d: wrong bytes for %s", step, key[:8])
			}
		case op < 10:
			s.Pin(key)
		case op < 11:
			s.Unpin(key)
		default:
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	occ := s.Occupancy()
	if occ.CapBytes != 4000 {
		t.Fatalf("summed shard caps = %d, want 4000", occ.CapBytes)
	}
	// After compaction the index and the disk agree exactly: Keys()
	// enumerates precisely the keys whose files are live, each byte-exact.
	keys := s.Keys()
	for _, k := range keys {
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, ref[k]) {
			t.Fatalf("indexed key %s unreadable or corrupted after compaction (ok=%v)", k[:8], ok)
		}
	}
	var liveOnDisk int
	for i := 0; i < 4; i++ {
		ks, err := scanStoreDir(filepath.Join(dir, fmt.Sprintf("shard-%02x", i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		liveOnDisk += len(ks)
	}
	if len(keys) != liveOnDisk {
		t.Fatalf("index enumerates %d keys, disk holds %d", len(keys), liveOnDisk)
	}
}

// TestShardedCompactionCrashSafety pins the two crash shapes around
// keys.idx: a torn tail from a crash mid-append is repaired on reopen,
// and a crash mid-compaction (stale temp file beside the index, old
// index still in place) leaves a store that reopens, compacts cleanly,
// and sweeps the stray.
func TestShardedCompactionCrashSafety(t *testing.T) {
	dir := t.TempDir()
	s, err := NewShardedStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 12; i++ {
		k := testKey(i)
		keys = append(keys, k)
		if err := s.Put(k, valFor(i, 40)); err != nil {
			t.Fatal(err)
		}
	}

	// Crash mid-append: torn final line on one shard's index.
	idx0 := filepath.Join(dir, "shard-00", "keys.idx")
	f, err := os.OpenFile(idx0, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(strings.Repeat("f", 30)) // half a key, no newline
	f.Close()

	// Crash mid-compaction: writeFileAtomic died before the rename —
	// old index intact, orphan temp file beside it.
	stray := filepath.Join(dir, "shard-01", ".tmp-orphan")
	if err := os.WriteFile(stray, []byte("partial index"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Minute)
	os.Chtimes(stray, old, old)

	s2, err := NewShardedStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != 12 {
		t.Fatalf("reopened Len = %d, want 12 (torn tail not repaired?)", got)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	// The compacted index round-trips: a third open enumerates exactly
	// the live keys, and every value survives byte-exact.
	s3, err := NewShardedStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Len(); got != 12 {
		t.Fatalf("post-compaction Len = %d, want 12", got)
	}
	for i, k := range keys {
		if got, ok := s3.Get(k); !ok || !bytes.Equal(got, valFor(i, 40)) {
			t.Fatalf("key %d unreadable after crash drill (ok=%v)", i, ok)
		}
	}
	if _, err := os.Stat(stray); err == nil {
		t.Fatal("compaction left the stale mid-compaction temp file behind")
	}
}

// TestQueuePinsAgentKeyForCellLifetime pins the WorkQueue half of the
// eviction contract: a hybrid cell's trained-agent key is pinned from
// Enqueue until the cell finishes (or its last waiter cancels), with
// refcounts across cells sharing an agent — so a flood of writes against
// a capped store cannot evict a snapshot a live campaign references.
func TestQueuePinsAgentKeyForCellLifetime(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStoreWith(dir, StoreConfig{MaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	agentKey := testKey(0)
	if err := store.Put(agentKey, valFor(0, 200)); err != nil {
		t.Fatal(err)
	}

	q := NewWorkQueue(time.Minute)
	q.Store = store
	q.SetMaxAttempts(1)
	flood := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := store.Put(testKey(i), valFor(i, 200)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Two cells share the agent: the pin is refcounted, so finishing one
	// must not expose the snapshot while the other is still in flight.
	cellA := &WireJob{Key: testKey(100), Kind: KindSim, AgentKey: agentKey, Label: "hybrid-a"}
	cellB := &WireJob{Key: testKey(101), Kind: KindSim, AgentKey: agentKey, Label: "hybrid-b"}
	q.Enqueue(cellA, func([]byte, error) {})
	cancelB := q.Enqueue(cellB, func([]byte, error) {})

	flood(1, 30)
	if store.Occupancy().Evictions == 0 {
		t.Fatal("flood produced no evictions; the survival assertion is vacuous")
	}
	if got, ok := store.Get(agentKey); !ok || !bytes.Equal(got, valFor(0, 200)) {
		t.Fatalf("agent snapshot evicted while two cells reference it (ok=%v)", ok)
	}

	// Finish cell A the failure way (error submission against a 1-attempt
	// cap reaches finishLocked exactly like a success, without needing
	// canonical result bytes). Lease exactly one cell so B stays pending
	// and its cancel below drops the cell. One reference remains.
	if leased := q.Lease("w1", 1); len(leased) != 1 || leased[0].Key != cellA.Key {
		t.Fatalf("expected to lease cell A first, got %+v", leased)
	}
	q.Complete("w1", cellA.Key, nil, "boom")
	flood(30, 60)
	if _, ok := store.Get(agentKey); !ok {
		t.Fatal("agent snapshot evicted while cell B still references it")
	}

	// Cancel B's last waiter: the cell drops and the final pin releases.
	if !cancelB() {
		t.Fatal("cancel of the pending cell failed")
	}
	if store.pins.Pinned(agentKey) {
		t.Fatal("agent key still pinned after both cells released it")
	}
	flood(60, 90)
	if _, err := os.Stat(store.path(agentKey)); err == nil {
		t.Fatal("cold unpinned snapshot survived the post-release flood")
	}
}

// TestHotCacheBoundedLRU exercises the memory tier directly: the byte
// bound holds, eviction is LRU, an oversized entry is refused, and drop
// keeps the cache coherent with disk eviction.
func TestHotCacheBoundedLRU(t *testing.T) {
	h := newHotCache(300)
	h.put("a", valFor(1, 100))
	h.put("b", valFor(2, 100))
	h.put("c", valFor(3, 100))
	if _, ok := h.get("a"); !ok {
		t.Fatal("cache evicted within its budget")
	}
	// "a" is now MRU; inserting "d" must evict "b", the LRU.
	h.put("d", valFor(4, 100))
	if _, ok := h.get("b"); ok {
		t.Fatal("LRU entry survived over-budget insert")
	}
	if _, ok := h.get("a"); !ok {
		t.Fatal("MRU entry evicted instead of LRU")
	}
	if h.size() > 300 {
		t.Fatalf("cache holds %d bytes over its 300-byte bound", h.size())
	}
	h.put("huge", valFor(5, 301))
	if _, ok := h.get("huge"); ok {
		t.Fatal("entry larger than the whole cache was admitted")
	}
	h.drop("a")
	if _, ok := h.get("a"); ok {
		t.Fatal("dropped entry still resident")
	}
}

package campaign_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"astro/internal/campaign"
	"astro/internal/scenario"
)

// soakMatrix is the rolling sweep the bounded-store soak runs: 5
// synthesized programs × 2 schedulers × 2 configs × 15 seeds = 300 cells,
// three times the chaos drill's working set.
func soakMatrix() scenario.Matrix {
	return scenario.Matrix{
		Name:         "soak-300",
		ProgramCount: 5,
		ProgramSeed:  21,
		Schedulers:   []string{"default", "gts"},
		Configs:      []string{"1L1B", "all-on"},
		Seeds:        []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
	}
}

// TestBoundedStoreSoak is the headline test of the bounded store: a
// 300-cell scenario sweep rolls through a sharded disk store capped well
// below the working set, in waves, and the store must
//
//   - never exceed its byte cap (checked after every wave and at the end,
//     against both its own accounting and the actual files on disk);
//   - never bank a wrong result: the full sweep's fingerprint is
//     byte-identical to an unbounded in-process reference run, and every
//     key still resident holds exactly the reference bytes;
//   - never evict a pinned snapshot: a key pinned before the flood (the
//     trained-agent stand-in — the mechanism is identical) survives every
//     eviction wave byte-exact;
//   - make a warm re-run recompute exactly the evicted keys: after
//     compaction, reopening the directory unbounded and re-running all
//     300 cells performs precisely (300 - resident) fresh simulations.
//
// The final occupancy snapshot is written to ASTRO_ARTIFACT_DIR (set in
// CI) so a failing race job ships the store's accounting as an artifact.
func TestBoundedStoreSoak(t *testing.T) {
	m := soakMatrix()
	if got := m.Cells(); got != 300 {
		t.Fatalf("matrix expands to %d cells, want 300", got)
	}
	jobs := expandMatrix(t, m)
	if len(jobs) != 300 {
		t.Fatalf("expanded to %d jobs, want 300", len(jobs))
	}

	// Leg A: unbounded in-process reference. Also sizes the working set,
	// which the cap is derived from — the soak must stay meaningful if
	// result encoding ever changes size.
	refStore := campaign.NewMemStore()
	refPool := &campaign.Pool{Workers: 4, Store: refStore}
	outsA, err := refPool.Run(nil, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := map[string][]byte{}
	var workingSet int64
	for i, j := range jobs {
		key, ok := j.Key()
		if !ok {
			t.Fatalf("job %d not cacheable", i)
		}
		data, ok := refStore.Get(key)
		if !ok {
			t.Fatalf("reference run did not bank job %d", i)
		}
		refBytes[key] = data
		workingSet += int64(len(data))
	}
	cap := workingSet / 3 // well below the 300-cell working set

	// Leg B: the bounded store. 8 shards so eviction pressure exercises
	// the per-shard caps; a hot cache at half the disk cap.
	dir := t.TempDir()
	store, err := campaign.NewShardedStoreWith(dir, 8, campaign.StoreConfig{MaxBytes: cap, HotBytes: cap / 2})
	if err != nil {
		t.Fatal(err)
	}

	// Pin a snapshot before the flood. Its bytes are a real banked result
	// — the store cannot tell results from trained-agent snapshots, so
	// pinning one exercises exactly the path that protects live agents.
	pinnedKey, _ := jobs[0].Key()
	pool := &campaign.Pool{Workers: 4, Store: store}
	if _, err := pool.Run(nil, jobs[:1], nil); err != nil {
		t.Fatal(err)
	}
	store.Pin(pinnedKey)

	assertUnderCap := func(when string) campaign.Occupancy {
		t.Helper()
		occ := store.Occupancy()
		if occ.DiskBytes > occ.CapBytes {
			t.Fatalf("%s: store over cap: %d > %d bytes (pinned %d)", when, occ.DiskBytes, occ.CapBytes, occ.PinnedBytes)
		}
		return occ
	}

	// The rolling sweep: 5 waves of 60 cells.
	var outsB []*campaign.Outcome
	for wave := 0; wave < 5; wave++ {
		outs, err := pool.Run(nil, jobs[wave*60:(wave+1)*60], nil)
		if err != nil {
			t.Fatal(err)
		}
		outsB = append(outsB, outs...)
		occ := assertUnderCap("wave")
		if wave == 4 && occ.Evictions == 0 {
			t.Fatalf("cap %d against a %d-byte working set produced zero evictions — the soak is vacuous", cap, workingSet)
		}
		// The pinned snapshot rode out this wave byte-exact.
		if got, ok := store.Get(pinnedKey); !ok || !bytes.Equal(got, refBytes[pinnedKey]) {
			t.Fatalf("wave %d: pinned snapshot evicted or corrupted (ok=%v)", wave, ok)
		}
	}

	// Zero wrong results: fingerprint identity with the unbounded
	// reference, and every resident key byte-exact.
	for i, o := range outsB {
		if o == nil || o.Err != nil {
			t.Fatalf("cell %d failed under the bounded store: %+v", i, o)
		}
	}
	if fa, fb := campaign.Fingerprint(outsA), campaign.Fingerprint(outsB); fa != fb {
		t.Fatalf("bounded-store fingerprint %s != unbounded reference %s", fb, fa)
	}
	resident := 0
	for key, want := range refBytes {
		got, ok := store.Get(key)
		if ok {
			resident++
			if !bytes.Equal(got, want) {
				t.Fatalf("resident key %s holds wrong bytes — a bounded store banked a wrong result", key[:8])
			}
		}
	}
	finalOcc := assertUnderCap("final")
	writeOccupancyArtifact(t, finalOcc)
	if resident == len(refBytes) {
		t.Fatalf("all %d keys resident under a cap of a third of the working set — eviction never happened", resident)
	}

	// Warm re-run recomputes only the evicted keys. Compact first (the
	// index must forget evictions), then reopen the directory unbounded —
	// an audit-style reopen, so the warm run itself evicts nothing and the
	// recompute count is exact.
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	warmStore, err := campaign.NewShardedStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := warmStore.Len(); got != resident {
		t.Fatalf("compacted index enumerates %d keys, Get found %d resident", got, resident)
	}
	var fresh atomic.Int64
	warmPool := &campaign.Pool{Workers: 4, Store: warmStore}
	outsW, err := warmPool.Run(nil, jobs, func(p campaign.Progress) {
		if !p.CacheHit {
			fresh.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	evicted := int64(len(refBytes) - resident)
	if got := fresh.Load(); got != evicted {
		t.Fatalf("warm re-run performed %d fresh simulations, want exactly the %d evicted keys", got, evicted)
	}
	if fa, fw := campaign.Fingerprint(outsA), campaign.Fingerprint(outsW); fa != fw {
		t.Fatalf("warm-rerun fingerprint %s != reference %s", fw, fa)
	}
	t.Logf("soak: working set %d bytes, cap %d, %d/%d keys survived, %d evictions, warm re-run recomputed %d",
		workingSet, cap, resident, len(refBytes), finalOcc.Evictions, evicted)
}

// writeOccupancyArtifact snapshots the store accounting beside the other
// CI artifacts (ASTRO_ARTIFACT_DIR; a temp dir locally) so a failing
// race job ships the numbers that explain it.
func writeOccupancyArtifact(t *testing.T, occ campaign.Occupancy) {
	t.Helper()
	dir := os.Getenv("ASTRO_ARTIFACT_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(occ, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "store-occupancy.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/hw"
	"astro/internal/sim"
)

// RemoteRunner executes job batches by leasing cells to pull-based workers
// through a WorkQueue, drop-in beside the local Pool: same jobs, same keys,
// same store discipline, byte-identical outcomes (the remote byte-identity
// test pins a 60-cell matrix in-process against two workers).
//
// Per job, in order:
//
//   - cache: the shared store is consulted first, exactly like Pool — a
//     warm store means nothing is ever enqueued, so a warm re-run through
//     workers performs zero fresh simulations anywhere.
//   - wireable jobs — including hybrid-by-agent-key jobs, whose trained
//     agent travels by content key through the agent exchange — are
//     enqueued; the queue deduplicates by key, leases cells to whichever
//     workers poll, re-issues expired leases, and validates results before
//     this runner stores them.
//   - non-wireable jobs (in-process Hybrid policy factories) run on the
//     Local fallback pool concurrently with the remote cells, and are
//     counted into the queue's Local* status counters so /work/status
//     reflects the whole campaign, not just the leased part.
//
// Train is the training counterpart: training cells lease out exactly like
// simulation cells (WireJob kind "train"), workers push the finished
// snapshots back, and the restored agents are inference-exact — so a
// fig10-style suite distributes its training and its hybrid sampling with
// zero coordinator-local work.
//
// Cancellation withdraws not-yet-completed cells from the queue; a cell a
// worker already holds finishes harmlessly — its late result is
// acknowledged and, when the queue's Store is configured (astro-serve and
// the CLI cluster point it at the shared store), kept for any future
// campaign wanting the same key.
type RemoteRunner struct {
	Queue *WorkQueue
	Store ResultStore // shared result store, consulted before leasing
	Local Pool        // fallback for non-wireable jobs (and everything, when Queue is nil)

	// ShipPrograms attaches each simulation cell's compiled program (the
	// canonical sim.EncodeProgram bytes, banked in Store under
	// ProgramKey(moduleHash, costTableID)) to the outgoing WireJob, so warm
	// workers skip recompilation. Strictly an optimization: the field is
	// inert for cell identity, workers verify the bytes and fall back to
	// compiling locally on any mismatch, and results are byte-identical
	// either way (DESIGN.md invariant 12). Training cells never carry one.
	ShipPrograms bool

	// progMu serializes first-compile races per run; the store is the
	// real cache, this just keeps a 24-cell sweep from compiling the same
	// module on every enqueue before the first Put lands.
	progMu    sync.Mutex
	progCache map[string][]byte // ProgramKey → encoded bytes, this runner only
}

// programBytes returns the canonical compiled-program bytes for a job, from
// (in order) the runner's in-process memo, the shared store, or a fresh
// compile that is then banked in both. Any failure returns nil — shipping
// is best effort, and a cell without bytes just compiles worker-side.
func (r *RemoteRunner) programBytes(j *Job) []byte {
	plat, err := hw.ByName(j.platformName())
	if err != nil {
		return nil
	}
	key := ProgramKey(j.moduleHash(), sim.CostTableID(plat))
	r.progMu.Lock()
	defer r.progMu.Unlock()
	if data, ok := r.progCache[key]; ok {
		return data
	}
	if r.Store != nil {
		if data, ok := r.Store.Get(key); ok && sim.ProgramBytesCurrent(data) {
			// Stale-generation artifacts fail the check and are recompiled
			// below, overwriting the entry.
			if r.progCache == nil {
				r.progCache = map[string][]byte{}
			}
			r.progCache[key] = data
			return data
		}
	}
	data := sim.EncodeProgram(sim.CompiledProgram(j.Module), plat)
	if r.progCache == nil {
		r.progCache = map[string][]byte{}
	}
	r.progCache[key] = data
	if r.Store != nil {
		_ = r.Store.Put(key, data)
	}
	return data
}

// Run implements Runner.
func (r *RemoteRunner) Run(ctx context.Context, jobs []*Job, onProgress func(Progress)) ([]*Outcome, error) {
	if r.Queue == nil {
		return r.Local.Run(ctx, jobs, onProgress)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	outs := make([]*Outcome, len(jobs))
	var (
		progMu sync.Mutex
		done   int
	)
	reportP := func(p Progress) {
		progMu.Lock()
		done++
		p.Done, p.Total = done, len(jobs)
		if onProgress != nil {
			onProgress(p)
		}
		progMu.Unlock()
	}
	report := func(o *Outcome) {
		pr := Progress{
			JobIndex:  o.Job.Index,
			Label:     o.Job.Label,
			Worker:    o.Worker,
			CacheHit:  o.CacheHit,
			WallS:     o.WallS,
			SimInstr:  o.SimInstr,
			SimCycles: o.SimCycles,
		}
		if o.Err != nil {
			pr.Err = o.Err.Error()
		}
		reportP(pr)
	}

	var (
		wg        sync.WaitGroup
		cancels   []func() bool
		remoteIdx []int
		localJobs []*Job
		localIdx  []int
	)
	for i, j := range jobs {
		key, cacheable := j.Key()
		if cacheable && r.Store != nil {
			if data, ok := r.Store.Get(key); ok {
				if res, err := sim.DecodeResult(data); err == nil {
					o := &Outcome{Job: j, Result: res, Bytes: data, CacheHit: true, Worker: -1}
					o.SimInstr, o.SimCycles = resultWork(res)
					outs[i] = o
					report(o)
					continue
				}
				// Corrupt entry: fall through to a fresh (remote) run that
				// overwrites it.
			}
		}
		wire, err := j.Wire()
		if err != nil {
			// Not wireable (hybrid factory, uncacheable): local fallback.
			localJobs = append(localJobs, j)
			localIdx = append(localIdx, i)
			continue
		}
		wire.Campaign = CampaignIDFromContext(ctx) // trace annotation; inert
		if r.ShipPrograms && !wire.Opts.LegacyInterp {
			if data := r.programBytes(j); data != nil {
				wire.Program = data // acceleration only; inert for identity
				cRProgShipped.Inc()
			}
		}
		wg.Add(1)
		start := time.Now()
		cancel := r.Queue.Enqueue(wire, func(data []byte, qerr error) {
			defer wg.Done()
			o := &Outcome{Job: j, Worker: -1}
			if qerr != nil {
				o.Err = qerr
			} else if res, derr := sim.DecodeResult(data); derr != nil {
				o.Err = derr // cannot pass queue validation; belt and braces
			} else {
				o.Result, o.Bytes = res, data
				o.SimInstr, o.SimCycles = resultWork(res)
				// Best effort, like Pool's cache fill: a failed Put only
				// costs future memoization. Skipped when the queue already
				// banks results into the same store — one fsync per cell,
				// not two.
				if r.Store != nil && r.Store != r.Queue.Store {
					_ = r.Store.Put(wire.Key, data)
				}
			}
			o.WallS = time.Since(start).Seconds()
			outs[i] = o
			report(o)
		})
		cancels = append(cancels, cancel)
		remoteIdx = append(remoteIdx, i)
	}

	// Non-wireable jobs execute locally while workers chew on the leased
	// cells; their outcomes land at their original indices so job order —
	// and therefore the result-set fingerprint — is preserved. The queue's
	// Local* counters track them so fleet status adds up (a cancelled run
	// settles the cells its pool never reported).
	if len(localJobs) > 0 {
		r.Queue.noteLocalStart(len(localJobs))
		var reported atomic.Int64
		localOuts, _ := r.Local.Run(ctx, localJobs, func(p Progress) {
			reported.Add(1)
			r.Queue.noteLocalDone(p.Err != "")
			reportP(p)
		})
		r.Queue.noteLocalAbandoned(len(localJobs) - int(reported.Load()))
		for k, o := range localOuts {
			outs[localIdx[k]] = o
		}
	}

	waitCh := make(chan struct{})
	go func() { wg.Wait(); close(waitCh) }()
	select {
	case <-waitCh:
	case <-ctx.Done():
		// Withdraw every cell whose callback has not fired. cancel()
		// returning true transfers outcome ownership to us; false means the
		// callback ran (or is running) and will fill the slot itself.
		for k, c := range cancels {
			if c() {
				i := remoteIdx[k]
				outs[i] = &Outcome{Job: jobs[i], Err: ctx.Err(), Worker: -1}
				wg.Done()
			}
		}
		<-waitCh // in-flight callbacks finish; outs is quiescent after this
	}

	var errs []error
	for _, o := range outs {
		if o != nil && o.Err != nil {
			errs = append(errs, fmt.Errorf("job %d (%s): %w", o.Job.Index, o.Job.Label, o.Err))
		}
	}
	return outs, errors.Join(errs...)
}

// Train implements Trainer by leasing training cells to the worker fleet.
// Per spec, in order: the shared store is consulted first (a warm store
// trains nothing anywhere, same as TrainCell), then the cell is enqueued
// as a WireJob of kind "train" and some worker trains it and pushes the
// snapshot back. The returned agents are restored from snapshot bytes and
// therefore inference-exact — byte-identical downstream results to
// training in-process, which the distributed fig10 identity test pins.
//
// Cancellation withdraws cells no worker has picked up; a training cell a
// worker already holds finishes and its snapshot is banked into the
// queue's store for the next campaign.
func (r *RemoteRunner) Train(ctx context.Context, specs []*TrainSpec) ([]*Trained, error) {
	if r.Queue == nil {
		return r.Local.Train(ctx, specs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	outs := make([]*Trained, len(specs))
	errs := make([]error, len(specs))
	var (
		wg        sync.WaitGroup
		cancels   []func() bool
		cancelIdx []int
	)
	for i, ts := range specs {
		key, err := ts.Key()
		if err != nil {
			errs[i] = err
			continue
		}
		if r.Store != nil {
			if data, ok := r.Store.Get(key); ok {
				if tr, rerr := restoreTrained(data); rerr == nil {
					tr.CacheHit = true
					outs[i] = tr
					continue
				}
				// Corrupt snapshot: fall through to a fresh remote training
				// that overwrites it.
			}
		}
		wire, err := ts.Wire()
		if err != nil {
			errs[i] = err
			continue
		}
		wire.Campaign = CampaignIDFromContext(ctx) // trace annotation; inert
		wg.Add(1)
		cancel := r.Queue.Enqueue(wire, func(data []byte, qerr error) {
			defer wg.Done()
			if qerr != nil {
				errs[i] = qerr
				return
			}
			tr, rerr := restoreTrained(data)
			if rerr != nil {
				errs[i] = rerr // cannot pass queue validation; belt and braces
				return
			}
			outs[i] = tr
			if r.Store != nil && r.Store != r.Queue.Store {
				_ = r.Store.Put(key, data)
			}
		})
		cancels = append(cancels, cancel)
		cancelIdx = append(cancelIdx, i)
	}

	waitCh := make(chan struct{})
	go func() { wg.Wait(); close(waitCh) }()
	select {
	case <-waitCh:
	case <-ctx.Done():
		for k, c := range cancels {
			if c() {
				errs[cancelIdx[k]] = ctx.Err()
				wg.Done()
			}
		}
		<-waitCh
	}

	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("cell %d (%s): %w", i, specs[i].Label, err))
		}
	}
	return outs, errors.Join(joined...)
}

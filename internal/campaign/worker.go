package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/hw"
	"astro/internal/sim"
	"astro/internal/telemetry"
)

// Worker is the pull side of the distributed campaign protocol: it leases
// content-addressed cells from a coordinator (astro-serve or the CLI's
// loopback cluster), executes them, and pushes canonical result bytes
// back. Simulation cells run through the same Job.Execute path the local
// pool uses; training cells (WireJob kind "train") run through TrainCell
// against the worker's agent exchange, so the finished snapshot is
// published to the coordinator for every other machine. Workers are
// stateless — identity is just a label for lease accounting — so killing
// one loses at most its in-flight cells, which the coordinator re-leases
// after the TTL.
//
// Parallel sizes the executor pool: one lease/heartbeat loop fans each
// batch out across N goroutines, so a single worker process saturates a
// many-core box (`astro worker -j N`). While executors run, a single
// heartbeat goroutine renews the union of the cells currently executing
// (POST /renew) at a third of the coordinator's TTL, so cells that
// outrun the TTL — long training cells under a short -lease-ttl — stay
// leased as long as the worker stays alive and working on them. Cells
// leased but not yet started are not renewed: they expire on schedule
// and re-issue to idle workers rather than queueing for hours behind a
// long cell. Only a worker that dies (or loses the network) stops
// heartbeating its executing cells, which is exactly when re-issuing
// them is the right call; conversely, a key the coordinator's renew
// response refuses is a lease this worker has lost, and the executor
// abandons that cell rather than double-submitting.
//
// Drain flips the worker into a graceful shutdown: no new leases, the
// held batch finishes and submits, Run returns nil (cmd/astro wires
// SIGTERM here for rolling restarts).
//
// An optional local Store short-circuits execution: a cell whose key the
// worker has already produced (an earlier run, a shared disk cache) is
// answered from the store without simulating. Results are validated
// end-to-end: the worker refuses cells whose recomputed key mismatches the
// coordinator's (codec drift), and the coordinator refuses results that do
// not decode (malformed submission) — so neither side can poison the
// other's content-addressed store.
type Worker struct {
	Coordinator string         // coordinator base URL including the /work mount
	ID          string         // worker identity for lease accounting
	Max         int            // cells per lease (0 = 2 per executor)
	Parallel    int            // executor goroutines per batch (default 1); `astro worker -j`
	Poll        time.Duration  // idle backoff (default 500ms; the coordinator may suggest longer)
	Renew       time.Duration  // heartbeat interval; 0 = a third of the lease TTL, negative = disabled
	Client      *http.Client   // nil = http.DefaultClient
	Store       ResultStore    // optional local result cache
	Agents      ResultStore    // trained-agent tier; nil = an AgentExchange against the coordinator over Store
	Token       string         // bearer token for coordinators behind WithBearerAuth ("" = none)
	Faults      FaultPolicy    // optional injected-fault schedule (chaos drills; nil = none)
	OnProgress  func(Progress) // optional per-cell hook (logging); called concurrently when Parallel > 1

	// IgnorePrograms makes the worker compile every cell locally even when
	// the coordinator ships compiled program bytes (`astro worker
	// -ignore-programs`) — a diagnostic escape hatch; results are
	// byte-identical either way.
	IgnorePrograms bool

	// Logf, when non-nil, receives operational log lines — lease failures
	// with their retry counts and backoff, most importantly, so an
	// unreachable coordinator is visible instead of a silent spin. Called
	// concurrently when Parallel > 1.
	Logf func(format string, args ...any)

	agentsOnce sync.Once
	agents     ResultStore

	leaseErrs atomic.Uint64 // cumulative failed lease attempts (also self-reported to the coordinator)
	draining  atomic.Bool   // Drain was called: finish the current batch, then Run returns

	// Seeded jitter stream for lease-failure backoff (see jitteredBackoff).
	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// LeaseErrors returns the worker's cumulative count of failed lease
// attempts (coordinator unreachable or non-200 responses).
func (w *Worker) LeaseErrors() uint64 { return w.leaseErrs.Load() }

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) max() int {
	if w.Max <= 0 {
		return 2 * w.parallel()
	}
	return w.Max
}

func (w *Worker) parallel() int {
	if w.Parallel <= 0 {
		return 1
	}
	return w.Parallel
}

func (w *Worker) setAuth(req *http.Request) {
	if w.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.Token)
	}
}

// fault consults the injected-fault schedule, counting fired faults.
func (w *Worker) fault(op FaultOp, key string) Fault {
	if w.Faults == nil {
		return FaultNone
	}
	f := w.Faults.Fault(op, w.ID, key)
	if f != FaultNone {
		cWFaults.Inc()
	}
	return f
}

// Drain flips the worker into draining for a rolling restart: it stops
// leasing new cells, finishes, renews, and submits the batch it already
// holds, and then Run returns nil with zero held leases. The coordinator
// is notified (best effort) so /work/fleet shows the state and so a
// worker that dies mid-drain still has its leftovers requeued at the
// drain deadline rather than the lease TTL. Safe to call from any
// goroutine (cmd/astro wires SIGTERM here); repeated calls are no-ops.
func (w *Worker) Drain() {
	if !w.draining.CompareAndSwap(false, true) {
		return
	}
	cWDrains.Inc()
	w.logf("worker %s: draining (finishing held leases, no new work)", w.ID)
	go w.postDrain()
}

// Draining reports whether Drain has been called.
func (w *Worker) Draining() bool { return w.draining.Load() }

func (w *Worker) postDrain() {
	body, _ := json.Marshal(DrainRequest{WorkerID: w.ID})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+"/drain", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	w.setAuth(req)
	if resp, err := w.client().Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}
}

// agentStore lazily builds the worker's trained-agent tier: the configured
// Agents store, or an AgentExchange that caches coordinator snapshots in
// the worker's local store (falling back to a fresh in-memory tier). One
// exchange serves the whole worker lifetime, so an agent fetched for one
// hybrid cell answers every later cell keyed to the same snapshot.
func (w *Worker) agentStore() ResultStore {
	w.agentsOnce.Do(func() {
		if w.Agents != nil {
			w.agents = w.Agents
			return
		}
		w.agents = NewAgentExchange(w.Coordinator, w.Store)
	})
	return w.agents
}

// Run leases and executes cells until ctx is cancelled (clean shutdown,
// returns nil). Network errors back off and retry: a worker outliving a
// coordinator restart re-attaches by itself.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" {
		return fmt.Errorf("campaign: worker needs a coordinator URL")
	}
	if w.ID == "" {
		return fmt.Errorf("campaign: worker needs an ID")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	idle := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		if w.draining.Load() {
			w.logf("worker %s: drained with zero held leases", w.ID)
			return nil
		}
		cells, retryAfter, ttl, err := w.lease(ctx)
		if err != nil {
			// Coordinator unreachable or erroring: count it, say so, and
			// retry with capped, jittered exponential backoff.
			n := w.leaseErrs.Add(1)
			cWLeaseErrs.Inc()
			idle++
			wait := w.jitteredBackoff(poll, idle)
			w.logf("worker %s: lease failed (attempt %d, total errors %d, retrying in %s): %v", w.ID, idle, n, wait, err)
			if !sleep(ctx, wait) {
				return nil
			}
			continue
		}
		if len(cells) == 0 {
			idle++
			// An explicitly configured Poll wins over the coordinator's
			// retry hint: loopback clusters set tight polls on purpose so
			// batch boundaries do not idle for the server's default
			// half-second. Only unconfigured workers follow the hint.
			wait := poll
			if w.Poll <= 0 && retryAfter > wait {
				wait = retryAfter
			}
			if !sleep(ctx, wait) {
				return nil
			}
			continue
		}
		idle = 0
		if err := w.executeBatch(ctx, cells, ttl); err != nil {
			return err
		}
	}
}

// executeBatch fans one lease's cells out across Parallel executor
// goroutines under a single heartbeat that renews the union of the cells
// currently *executing*, so a cell that outruns the TTL is not re-issued
// out from under a live worker. Cells queued behind the executors in the
// same batch are deliberately left to expire: an idle worker elsewhere in
// the fleet picks them up after one TTL instead of waiting hours behind
// this worker's long cells. (This is the client half of the queue's
// renewal invariant: one heartbeat must not keep a whole worker's
// untouched leases alive.) A key the coordinator's renew response omits
// is a lost lease — the cell has been re-queued for someone else — and
// the executor abandons it rather than double-submitting. The heartbeat
// stops with the batch. A non-nil error (ErrInjectedCrash) means the
// worker must die.
func (w *Worker) executeBatch(ctx context.Context, cells []*WireJob, ttl time.Duration) error {
	var (
		mu        sync.Mutex
		executing = map[string]bool{} // keys under execution right now
		lost      = map[string]bool{} // leases the coordinator reported lost
	)
	held := func() []string {
		mu.Lock()
		defer mu.Unlock()
		keys := make([]string, 0, len(executing))
		for k := range executing {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	markLost := func(keys []string) {
		mu.Lock()
		defer mu.Unlock()
		for _, k := range keys {
			lost[k] = true
		}
	}
	isLost := func(key string) bool {
		mu.Lock()
		defer mu.Unlock()
		return lost[key]
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if interval := w.renewInterval(ttl); interval > 0 {
		go w.renewLoop(hbCtx, interval, held, markLost)
	}
	received := time.Now()
	n := w.parallel()
	if n > len(cells) {
		n = len(cells)
	}
	var (
		wg      sync.WaitGroup
		crashed atomic.Bool
		jobs    = make(chan *WireJob)
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range jobs {
				if ctx.Err() != nil || crashed.Load() {
					continue // drain the channel; these leases expire on schedule
				}
				mu.Lock()
				executing[cell.Key] = true
				mu.Unlock()
				err := w.execute(ctx, cell, received, isLost)
				mu.Lock()
				delete(executing, cell.Key)
				mu.Unlock()
				if errors.Is(err, ErrInjectedCrash) {
					crashed.Store(true)
				}
			}
		}()
	}
	for _, cell := range cells {
		jobs <- cell
	}
	close(jobs)
	wg.Wait()
	if crashed.Load() {
		return ErrInjectedCrash
	}
	return nil
}

// renewInterval picks the heartbeat period: the configured Renew, or a
// third of the coordinator's TTL — early enough that one dropped heartbeat
// does not cost the lease. Non-positive TTLs (older coordinators that do
// not advertise one) disable the heartbeat rather than spin.
func (w *Worker) renewInterval(ttl time.Duration) time.Duration {
	if w.Renew < 0 {
		return 0
	}
	if w.Renew > 0 {
		return w.Renew
	}
	if ttl <= 0 {
		return 0
	}
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	return interval
}

// renewLoop posts heartbeats for the still-held keys until cancelled.
// Network failures are ignored: a missed renewal either recovers on the
// next tick or the lease expires and the protocol's re-issue path takes
// over. A successful response, though, is authoritative — any requested
// key it does not list as renewed has lost its lease (expired and
// re-queued for another worker), and markLost tells the executors to
// abandon that cell instead of double-submitting its result.
func (w *Worker) renewLoop(ctx context.Context, interval time.Duration, heldKeys func() []string, markLost func([]string)) {
	for {
		if !sleep(ctx, interval) {
			return
		}
		keys := heldKeys()
		if len(keys) == 0 {
			continue
		}
		if w.fault(FaultOpRenew, "") == FaultDrop {
			w.logf("worker %s: injected fault: heartbeat skipped", w.ID)
			continue
		}
		body, _ := json.Marshal(RenewRequest{WorkerID: w.ID, Keys: keys})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+"/renew", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		w.setAuth(req)
		resp, err := w.client().Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
			continue
		}
		var rr RenewResponse
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr)
		resp.Body.Close()
		if decErr != nil {
			continue
		}
		renewed := make(map[string]bool, len(rr.Renewed))
		for _, k := range rr.Renewed {
			renewed[k] = true
		}
		var gone []string
		for _, k := range keys {
			if !renewed[k] {
				gone = append(gone, k)
			}
		}
		if len(gone) > 0 {
			markLost(gone)
		}
	}
}

func backoff(base time.Duration, n int) time.Duration {
	d := base
	for i := 1; i < n && d < 5*time.Second; i++ {
		d *= 2
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// jitteredBackoff is backoff with ±20% seeded jitter: after a
// coordinator restart, a fleet of workers would otherwise all have
// counted the same number of failures and retry in lockstep forever. The
// jitter stream is seeded from the worker ID — deterministic per worker,
// decorrelated across the fleet.
func (w *Worker) jitteredBackoff(base time.Duration, n int) time.Duration {
	d := backoff(base, n)
	w.rngOnce.Do(func() {
		h := fnv.New64a()
		io.WriteString(h, w.ID)
		w.rng = rand.New(rand.NewSource(int64(h.Sum64())))
	})
	w.rngMu.Lock()
	u := w.rng.Float64()
	w.rngMu.Unlock()
	return time.Duration(float64(d) * (0.8 + 0.4*u))
}

func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (w *Worker) lease(ctx context.Context) ([]*WireJob, time.Duration, time.Duration, error) {
	body, _ := json.Marshal(LeaseRequest{WorkerID: w.ID, Max: w.max(), LeaseErrors: w.leaseErrs.Load()})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+"/lease", bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	w.setAuth(req)
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return nil, 0, 0, fmt.Errorf("campaign: lease: coordinator returned %s", resp.Status)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes)).Decode(&lr); err != nil {
		return nil, 0, 0, err
	}
	return lr.Cells, time.Duration(lr.RetryAfterMS) * time.Millisecond, time.Duration(lr.LeaseTTLMS) * time.Millisecond, nil
}

// execute runs one cell — simulation or training — and submits its result
// together with the cell's worker-side spans ("queued": lease receipt to
// execution start; "execute": the execution itself), which the
// coordinator merges with its own lease_wait span into the cell's trace.
// Failures are reported to the coordinator (so the cell can be re-leased
// or failed) rather than swallowed. A cell whose lease the coordinator
// reported lost (isLost) is abandoned without submission: the cell has
// re-queued for another worker, and a late duplicate would only burn
// coordinator validation for nothing. Returns ErrInjectedCrash when the
// fault schedule kills the worker here.
func (w *Worker) execute(ctx context.Context, cell *WireJob, received time.Time, isLost func(string) bool) error {
	fault := w.fault(FaultOpExecute, cell.Key)
	if fault == FaultCrash {
		w.logf("worker %s: injected fault: crashing while holding %s", w.ID, cell.Key)
		return ErrInjectedCrash
	}
	start := time.Now()
	var (
		data    []byte
		execErr error
		hit     bool
	)
	if w.Store != nil {
		if cached, ok := w.Store.Get(cell.Key); ok {
			if validateWireResult(cell.Kind, cached) == nil {
				data, hit = cached, true
			}
		}
	}
	if data == nil {
		switch cell.Kind {
		case KindTrain:
			data, hit, execErr = w.executeTrain(cell)
		default:
			data, execErr = w.executeSim(cell)
		}
		if execErr == nil && w.Store != nil && !hit {
			_ = w.Store.Put(cell.Key, data)
		}
	}

	cWCells.Inc()
	if isLost != nil && isLost(cell.Key) {
		cWAbandoned.Inc()
		w.logf("worker %s: lease lost for %s (%s); abandoning without submission", w.ID, cell.Key, cell.Label)
		if w.OnProgress != nil {
			w.OnProgress(Progress{JobIndex: cell.Index, Label: cell.Label, CacheHit: hit,
				WallS: time.Since(start).Seconds(), Err: "lease lost; abandoned"})
		}
		return nil
	}
	switch fault {
	case FaultDrop:
		w.logf("worker %s: injected fault: dropping result for %s", w.ID, cell.Key)
		if w.OnProgress != nil {
			w.OnProgress(Progress{JobIndex: cell.Index, Label: cell.Label, CacheHit: hit,
				WallS: time.Since(start).Seconds(), Err: "injected fault: result dropped"})
		}
		return nil
	case FaultCorrupt:
		if execErr == nil {
			w.logf("worker %s: injected fault: corrupting result for %s", w.ID, cell.Key)
			data = corruptResult(data)
		}
	}
	spans := []telemetry.Span{
		{Name: "queued", Host: w.ID, Start: received, DurS: start.Sub(received).Seconds()},
		{Name: "execute", Host: w.ID, Start: start, DurS: time.Since(start).Seconds()},
	}
	sub := ResultSubmission{WorkerID: w.ID, Key: cell.Key, Data: data, Spans: spans}
	if execErr != nil {
		sub = ResultSubmission{WorkerID: w.ID, Key: cell.Key, Error: execErr.Error(), Spans: spans}
	}
	status, err := w.submit(ctx, sub)
	if w.OnProgress != nil {
		p := Progress{
			JobIndex: cell.Index,
			Label:    cell.Label,
			CacheHit: hit,
			WallS:    time.Since(start).Seconds(),
		}
		switch {
		case execErr != nil:
			p.Err = execErr.Error()
		case err != nil:
			p.Err = fmt.Sprintf("submit: %v", err)
		case status == CompleteRejected:
			p.Err = "result rejected by coordinator"
		}
		w.OnProgress(p)
	}
	return nil
}

// executeSim runs one simulation cell to canonical result bytes.
// Agent-keyed hybrid cells resolve their snapshot through the worker's
// agent exchange — local tier first, coordinator on miss. A cell carrying
// shipped program bytes (WireJob.Program) has them verified against the
// decoded module and this worker's cost tables; bytes that check out skip
// the compile, bytes that do not — stale compiler generation, corruption
// in transit, a coordinator calibrated for different hardware — are
// refused and the cell compiles locally, with byte-identical results
// either way (DESIGN.md invariant 12).
func (w *Worker) executeSim(cell *WireJob) ([]byte, error) {
	j, err := cell.Job()
	if err != nil {
		return nil, err
	}
	if j.AgentKey != "" {
		j.Agents = w.agentStore()
	}
	if len(cell.Program) > 0 && !w.IgnorePrograms && !j.Opts.LegacyInterp {
		if plat, perr := hw.ByName(j.platformName()); perr == nil {
			if prog, derr := sim.DecodeProgram(cell.Program, j.Module, plat); derr == nil {
				j.Program = prog
				cWProgHits.Inc()
			} else {
				cWProgRejects.Inc()
				w.logf("worker %s: refusing shipped program for %s (%s); compiling locally: %v",
					w.ID, cell.Key, cell.Label, derr)
			}
		}
	}
	res, err := j.Execute()
	if err != nil {
		return nil, err
	}
	return sim.EncodeResult(res)
}

// executeTrain runs one training cell through TrainCell against the agent
// exchange: a snapshot another machine already produced is a cache hit
// fetched from the coordinator, and a freshly trained one is published
// back through the exchange as a side effect — the /result submission then
// carries the same canonical snapshot bytes to complete the lease.
func (w *Worker) executeTrain(cell *WireJob) (data []byte, hit bool, err error) {
	ts, err := cell.TrainSpec()
	if err != nil {
		return nil, false, err
	}
	agents := w.agentStore()
	tr, err := TrainCell(agents, ts)
	if err != nil {
		return nil, false, err
	}
	// Prefer the exchange's stored bytes (they are the canonical form
	// TrainCell banked); re-snapshot only if the Put was lost.
	if stored, ok := agents.Get(cell.Key); ok {
		return stored, tr.CacheHit, nil
	}
	data, err = snapshotBytes(tr)
	if err != nil || data == nil {
		return nil, false, fmt.Errorf("campaign: train cell %q produced an unsnapshotable agent", cell.Label)
	}
	return data, tr.CacheHit, nil
}

// submit pushes a result, retrying transient network failures a few times —
// losing a computed result to one connection reset would waste a whole
// simulation.
func (w *Worker) submit(ctx context.Context, sub ResultSubmission) (CompleteStatus, error) {
	body, err := json.Marshal(sub)
	if err != nil {
		return "", err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 && !sleep(ctx, time.Duration(attempt)*200*time.Millisecond) {
			return "", ctx.Err()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+"/result", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		w.setAuth(req)
		resp, err := w.client().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		// Only 200 (accepted/duplicate/unknown) and 422 (rejected) carry a
		// ResultResponse. Anything else is the coordinator refusing the
		// request wholesale — treating it as success would silently discard
		// a computed simulation, so it is a retryable error.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
			lastErr = fmt.Errorf("campaign: result submission: coordinator returned %s", resp.Status)
			continue
		}
		var rr ResultResponse
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&rr)
		resp.Body.Close()
		if decErr != nil {
			lastErr = decErr
			continue
		}
		return rr.Status, nil
	}
	return "", lastErr
}

package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"astro/internal/sim"
)

// Worker is the pull side of the distributed campaign protocol: it leases
// content-addressed cells from a coordinator (astro-serve or the CLI's
// loopback cluster), executes them with the same Job.Execute path the local
// pool uses, and pushes canonical result bytes back. Workers are stateless
// — identity is just a label for lease accounting — so killing one loses at
// most its in-flight cells, which the coordinator re-leases after the TTL.
//
// An optional local Store short-circuits execution: a cell whose key the
// worker has already produced (an earlier run, a shared disk cache) is
// answered from the store without simulating. Results are validated
// end-to-end: the worker refuses cells whose recomputed key mismatches the
// coordinator's (codec drift), and the coordinator refuses results that do
// not decode (malformed submission) — so neither side can poison the
// other's content-addressed store.
type Worker struct {
	Coordinator string         // coordinator base URL including the /work mount
	ID          string         // worker identity for lease accounting
	Max         int            // cells per lease (default 2)
	Poll        time.Duration  // idle backoff (default 500ms; the coordinator may suggest longer)
	Client      *http.Client   // nil = http.DefaultClient
	Store       ResultStore    // optional local result cache
	OnProgress  func(Progress) // optional per-cell hook (logging)
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) max() int {
	if w.Max <= 0 {
		return 2
	}
	return w.Max
}

// Run leases and executes cells until ctx is cancelled (clean shutdown,
// returns nil). Network errors back off and retry: a worker outliving a
// coordinator restart re-attaches by itself.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" {
		return fmt.Errorf("campaign: worker needs a coordinator URL")
	}
	if w.ID == "" {
		return fmt.Errorf("campaign: worker needs an ID")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	idle := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		cells, retryAfter, err := w.lease(ctx)
		if err != nil {
			// Coordinator unreachable: exponential-ish backoff, capped.
			idle++
			if !sleep(ctx, backoff(poll, idle)) {
				return nil
			}
			continue
		}
		if len(cells) == 0 {
			idle++
			// An explicitly configured Poll wins over the coordinator's
			// retry hint: loopback clusters set tight polls on purpose so
			// batch boundaries do not idle for the server's default
			// half-second. Only unconfigured workers follow the hint.
			wait := poll
			if w.Poll <= 0 && retryAfter > wait {
				wait = retryAfter
			}
			if !sleep(ctx, wait) {
				return nil
			}
			continue
		}
		idle = 0
		for _, cell := range cells {
			if ctx.Err() != nil {
				return nil
			}
			w.execute(ctx, cell)
		}
	}
}

func backoff(base time.Duration, n int) time.Duration {
	d := base
	for i := 1; i < n && d < 5*time.Second; i++ {
		d *= 2
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (w *Worker) lease(ctx context.Context) ([]*WireJob, time.Duration, error) {
	body, _ := json.Marshal(LeaseRequest{WorkerID: w.ID, Max: w.max()})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+"/lease", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return nil, 0, fmt.Errorf("campaign: lease: coordinator returned %s", resp.Status)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes)).Decode(&lr); err != nil {
		return nil, 0, err
	}
	return lr.Cells, time.Duration(lr.RetryAfterMS) * time.Millisecond, nil
}

// execute runs one cell and submits its result. Failures are reported to
// the coordinator (so the cell can be re-leased or failed) rather than
// swallowed.
func (w *Worker) execute(ctx context.Context, cell *WireJob) {
	start := time.Now()
	var (
		data    []byte
		execErr error
		hit     bool
	)
	if w.Store != nil {
		if cached, ok := w.Store.Get(cell.Key); ok {
			if _, err := sim.DecodeResult(cached); err == nil {
				data, hit = cached, true
			}
		}
	}
	if data == nil {
		j, err := cell.Job()
		if err != nil {
			execErr = err
		} else if res, err := j.Execute(); err != nil {
			execErr = err
		} else if data, err = sim.EncodeResult(res); err != nil {
			execErr = err
		} else if w.Store != nil {
			_ = w.Store.Put(cell.Key, data)
		}
	}

	sub := ResultSubmission{WorkerID: w.ID, Key: cell.Key, Data: data}
	if execErr != nil {
		sub = ResultSubmission{WorkerID: w.ID, Key: cell.Key, Error: execErr.Error()}
	}
	status, err := w.submit(ctx, sub)
	if w.OnProgress != nil {
		p := Progress{
			JobIndex: cell.Index,
			Label:    cell.Label,
			CacheHit: hit,
			WallS:    time.Since(start).Seconds(),
		}
		switch {
		case execErr != nil:
			p.Err = execErr.Error()
		case err != nil:
			p.Err = fmt.Sprintf("submit: %v", err)
		case status == CompleteRejected:
			p.Err = "result rejected by coordinator"
		}
		w.OnProgress(p)
	}
}

// submit pushes a result, retrying transient network failures a few times —
// losing a computed result to one connection reset would waste a whole
// simulation.
func (w *Worker) submit(ctx context.Context, sub ResultSubmission) (CompleteStatus, error) {
	body, err := json.Marshal(sub)
	if err != nil {
		return "", err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 && !sleep(ctx, time.Duration(attempt)*200*time.Millisecond) {
			return "", ctx.Err()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+"/result", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		// Only 200 (accepted/duplicate/unknown) and 422 (rejected) carry a
		// ResultResponse. Anything else is the coordinator refusing the
		// request wholesale — treating it as success would silently discard
		// a computed simulation, so it is a retryable error.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
			lastErr = fmt.Errorf("campaign: result submission: coordinator returned %s", resp.Status)
			continue
		}
		var rr ResultResponse
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&rr)
		resp.Body.Close()
		if decErr != nil {
			lastErr = decErr
			continue
		}
		return rr.Status, nil
	}
	return "", lastErr
}

package campaign_test

// Wire-path coverage for compiled-program shipping: a coordinator with
// ShipPrograms attaches canonical sim.EncodeProgram bytes to leased cells,
// warm workers skip recompilation entirely (counter-pinned), and every
// refusal path — missing bytes, corruption in transit, a coordinator
// calibrated for different hardware — falls back to a local compile with
// byte-identical result bytes.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"astro/internal/campaign"
	"astro/internal/hw"
	"astro/internal/scenario"
	"astro/internal/sim"
	"astro/internal/telemetry"
)

// Shared-registry instruments the shipping tests pin. Lookup is by name,
// so these are the same counters the campaign and sim layers bump.
var (
	cProgShips   = telemetry.Default.Counter("astro_program_ships_total", "")
	cProgHits    = telemetry.Default.Counter("astro_worker_program_hits_total", "")
	cProgRejects = telemetry.Default.Counter("astro_worker_program_rejects_total", "")
	cSimCompiles = telemetry.Default.Counter("astro_sim_compiles_total", "")
)

// startWorkers launches n pull workers against a fresh loopback
// coordinator for q and returns the cleanup.
func startWorkers(t *testing.T, q *campaign.WorkQueue, store campaign.ResultStore, n int) func() {
	t.Helper()
	srv := httptest.NewServer(http.StripPrefix("/work", campaign.WorkHandler(q, store)))
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		w := &campaign.Worker{
			Coordinator: srv.URL + "/work",
			ID:          []string{"ship-a", "ship-b", "ship-c"}[i],
			Max:         2,
			Poll:        5 * time.Millisecond,
		}
		go w.Run(ctx)
	}
	return func() { cancel(); srv.Close() }
}

// TestProgramShippingLoopback is the warm-path acceptance test: a 12-cell
// matrix through two loopback workers with program shipping on produces
// the same fingerprint as the in-process pool, every fresh cell consumes
// a shipped program (zero rejects), and the process-wide compile counter
// moves only by the coordinator's per-module compilations — the workers,
// who would otherwise compile once per cell (each wire cell decodes a
// fresh module), compile nothing.
func TestProgramShippingLoopback(t *testing.T) {
	m := scenarioMatrix12()
	jobsA := expandMatrix(t, m)

	pool := &campaign.Pool{Workers: 4, Store: campaign.NewMemStore()}
	outsA, err := pool.Run(context.Background(), jobsA, nil)
	if err != nil {
		t.Fatal(err)
	}
	fa := campaign.Fingerprint(outsA)

	store := campaign.NewMemStore()
	q := campaign.NewWorkQueue(time.Minute)
	q.Store = store
	stop := startWorkers(t, q, store, 2)
	defer stop()
	runner := &campaign.RemoteRunner{Queue: q, Store: store, ShipPrograms: true}

	jobsB := expandMatrix(t, m)
	distinct := map[any]bool{}
	for _, j := range jobsB {
		distinct[j.Module] = true
	}

	ships0, hits0, rej0, comp0 := cProgShips.Value(), cProgHits.Value(), cProgRejects.Value(), cSimCompiles.Value()
	outsB, err := runner.Run(context.Background(), jobsB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fb := campaign.Fingerprint(outsB); fb != fa {
		t.Fatalf("shipped-program fingerprint %s != in-process %s", fb, fa)
	}
	if hits := campaign.CacheHits(outsB); hits != 0 {
		t.Fatalf("cold run claims %d cache hits", hits)
	}
	if d := cProgShips.Value() - ships0; d != uint64(len(jobsB)) {
		t.Fatalf("coordinator shipped %d programs, want %d", d, len(jobsB))
	}
	if d := cProgHits.Value() - hits0; d != uint64(len(jobsB)) {
		t.Fatalf("workers consumed %d shipped programs, want %d", d, len(jobsB))
	}
	if d := cProgRejects.Value() - rej0; d != 0 {
		t.Fatalf("workers rejected %d shipped programs on the happy path", d)
	}
	// The whole distributed run compiled each distinct module exactly once
	// — on the coordinator, inside programBytes. Worker-side compiles are
	// what this pins to zero: without shipping, every cell would compile
	// its freshly decoded module.
	if d := cSimCompiles.Value() - comp0; d != uint64(len(distinct)) {
		t.Fatalf("run compiled %d times, want %d (one per distinct module, coordinator-side only)", d, len(distinct))
	}

	// Warm re-run: answered from the store, nothing leased, nothing
	// shipped, nothing compiled anywhere.
	ships1, comp1 := cProgShips.Value(), cSimCompiles.Value()
	outsW, err := runner.Run(context.Background(), expandMatrix(t, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits := campaign.CacheHits(outsW); hits != len(jobsB) {
		t.Fatalf("warm re-run: %d/%d cache hits", hits, len(jobsB))
	}
	if d := cProgShips.Value() - ships1; d != 0 {
		t.Fatalf("warm re-run shipped %d programs", d)
	}
	if d := cSimCompiles.Value() - comp1; d != 0 {
		t.Fatalf("warm re-run compiled %d times", d)
	}
}

// scenarioMatrix12 is a 12-cell grid over 3 synthesized modules — small
// enough for a loopback test, wide enough that both workers participate
// and module sharing across cells is visible in the compile counter.
func scenarioMatrix12() scenario.Matrix {
	return scenario.Matrix{
		Name:         "program-ship-12",
		ProgramCount: 3,
		ProgramSeed:  5,
		Schedulers:   []string{"default", "gts"},
		Configs:      []string{"all-on"},
		Seeds:        []int64{0, 1},
	}
}

// shipJobs expands one micro benchmark into three seed-distinct jobs and
// the platform they run on, for the fallback tests.
func shipJobs(t *testing.T) ([]*campaign.Job, *hw.Platform) {
	t.Helper()
	spec := campaign.Spec{
		Benchmarks: []string{"spin"},
		Schedulers: []string{"default"},
		Seeds:      []int64{1, 2, 3},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("spec expands to %d jobs, want 3", len(jobs))
	}
	plat, err := hw.ByName(campaign.DefaultPlatform)
	if err != nil {
		t.Fatal(err)
	}
	return jobs, plat
}

// enqueueWait pushes one wire cell and blocks for its result bytes.
func enqueueWait(t *testing.T, q *campaign.WorkQueue, w *campaign.WireJob) []byte {
	t.Helper()
	type outcome struct {
		data []byte
		err  error
	}
	ch := make(chan outcome, 1)
	q.Enqueue(w, func(data []byte, err error) { ch <- outcome{data, err} })
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("cell %s: %v", w.Label, o.err)
		}
		return o.data
	case <-time.After(30 * time.Second):
		t.Fatalf("cell %s: no result after 30s", w.Label)
		return nil
	}
}

// TestProgramShippingFallbacks pins the refusal paths: cells whose program
// bytes are absent, corrupted in transit, or specialized for a different
// cost table all complete with result bytes identical to a local execute —
// the worker refuses the bad artifact (counter-pinned) and compiles.
func TestProgramShippingFallbacks(t *testing.T) {
	jobs, plat := shipJobs(t)
	q := campaign.NewWorkQueue(time.Minute)
	stop := startWorkers(t, q, campaign.NewMemStore(), 1)
	defer stop()

	good := sim.EncodeProgram(sim.CompiledProgram(jobs[0].Module), plat)

	pp := hw.DefaultZooParams()
	pp.BigBlend = 0.5
	zoo, err := pp.Platform()
	if err != nil {
		t.Fatal(err)
	}
	foreign := sim.EncodeProgram(sim.CompiledProgram(jobs[2].Module), zoo)

	cases := []struct {
		name    string
		job     *campaign.Job
		program []byte
		reject  bool
	}{
		{"missing", jobs[0], nil, false},
		{"corrupt", jobs[1], corrupt(good), true},
		{"foreign-cost-table", jobs[2], foreign, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.job.Execute()
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.EncodeResult(res)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := tc.job.Wire()
			if err != nil {
				t.Fatal(err)
			}
			wire.Program = tc.program
			rej0 := cProgRejects.Value()
			got := enqueueWait(t, q, wire)
			if !bytes.Equal(got, want) {
				t.Fatalf("fallback result diverged from local execute:\ngot:  %.200s\nwant: %.200s", got, want)
			}
			d := cProgRejects.Value() - rej0
			if tc.reject && d != 1 {
				t.Fatalf("worker recorded %d program rejects, want 1", d)
			}
			if !tc.reject && d != 0 {
				t.Fatalf("worker recorded %d program rejects for an unshipped cell", d)
			}
		})
	}
}

// corrupt flips one bit mid-payload, past the header so the damage lands
// in the instruction stream and only the checksum can catch it.
func corrupt(data []byte) []byte {
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x20
	return bad
}

package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestBearerAuthGuardsWorkEndpoints: with a token configured, every /work
// request without the exact bearer credential is refused with 401 before
// the handler sees it; the matching credential passes; an empty token
// leaves the handler unwrapped (the trusted-network default).
func TestBearerAuthGuardsWorkEndpoints(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	store := NewMemStore()
	srv := httptest.NewServer(http.StripPrefix("/work",
		WithBearerAuth("s3cret", WorkHandler(q, store))))
	defer srv.Close()

	get := func(auth string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/work/status", nil)
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get(""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no credential: %d", resp.StatusCode)
	} else if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without a WWW-Authenticate challenge")
	}
	if resp := get("Bearer wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d", resp.StatusCode)
	}
	if resp := get("s3cret"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing Bearer scheme: %d", resp.StatusCode)
	}
	if resp := get("Bearer s3cret"); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid token: %d", resp.StatusCode)
	}

	// POST endpoints are guarded the same way (the mount wraps them all).
	body, _ := json.Marshal(LeaseRequest{WorkerID: "w1", Max: 1})
	resp, err := http.Post(srv.URL+"/work/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated lease: %d", resp.StatusCode)
	}
	if len(q.Stats().Workers) != 0 {
		t.Fatal("unauthenticated lease registered a worker")
	}

	// Empty token: pass-through, no wrapper.
	open := WorkHandler(q, store)
	if WithBearerAuth("", open) != open {
		t.Fatal("empty token did not return the handler unwrapped")
	}
}

// TestWorkerAuthenticatesEndToEnd: a worker configured with the token
// completes cells through a guarded coordinator; one without only piles up
// lease errors and never registers.
func TestWorkerAuthenticatesEndToEnd(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	store := NewMemStore()
	srv := httptest.NewServer(http.StripPrefix("/work",
		WithBearerAuth("s3cret", WorkHandler(q, store))))
	defer srv.Close()

	done := make(chan struct{})
	q.Enqueue(wireCells(t, 1)[0], func(data []byte, err error) {
		if err == nil {
			close(done)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	locked := &Worker{Coordinator: srv.URL + "/work", ID: "w-noauth", Poll: 5 * time.Millisecond}
	go locked.Run(ctx)
	authed := &Worker{Coordinator: srv.URL + "/work", ID: "w-auth", Poll: 5 * time.Millisecond, Token: "s3cret"}
	go authed.Run(ctx)

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("authenticated worker never completed the cell")
	}
	deadline := time.Now().Add(5 * time.Second)
	for locked.LeaseErrors() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tokenless worker reported no lease errors against a guarded coordinator")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := q.Stats()
	for _, w := range st.Workers {
		if w.ID == "w-noauth" {
			t.Fatal("tokenless worker registered with the queue")
		}
	}
	if row := workerRow(t, st, "w-auth"); row.Completed != 1 {
		t.Fatalf("authenticated worker completed %d cells", row.Completed)
	}
}

// TestDrainEndpoint drives POST /work/drain over the wire: drain reports
// the state and held-lease count, resume flips back to active, and a
// missing worker_id is a 400.
func TestDrainEndpoint(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	store := NewMemStore()
	srv := startCoordinator(t, q, store)

	q.Enqueue(wireCells(t, 1)[0], func([]byte, error) {})
	if cells := q.Lease("w1", 1); len(cells) != 1 {
		t.Fatal("no lease")
	}

	post := func(req DrainRequest) (DrainResponse, int) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/work/drain", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var dr DrainResponse
		json.NewDecoder(resp.Body).Decode(&dr)
		return dr, resp.StatusCode
	}

	dr, code := post(DrainRequest{WorkerID: "w1", GraceMS: 60_000})
	if code != http.StatusOK || dr.State != "draining" || dr.Held != 1 {
		t.Fatalf("drain: %d %+v", code, dr)
	}
	dr, code = post(DrainRequest{WorkerID: "w1", Resume: true})
	if code != http.StatusOK || dr.State != "active" {
		t.Fatalf("resume: %d %+v", code, dr)
	}
	if _, code := post(DrainRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty worker_id: %d", code)
	}
}

// Trainandrun walks the full Astro pipeline on a bundled benchmark:
// feature mining, Q-learning episodes, policy extraction, static
// imprinting, and a final comparison against the GTS baseline.
package main

import (
	"fmt"
	"log"
	"os"

	"astro"
)

func main() {
	bench := "hotspot"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	mod, args, err := astro.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := astro.NewProgram(mod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training Astro on %s %v...\n", bench, args)
	agent := prog.NewAgent(42)
	stats, pol, err := prog.Train(agent, astro.TrainConfig{Episodes: 10, Seed: 42, Args: args})
	if err != nil {
		log.Fatal(err)
	}
	first, last := stats[0], stats[len(stats)-1]
	fmt.Printf("episode 0: %.3f ms   episode %d: %.3f ms (convergence)\n",
		first.TimeS*1000, last.Episode, last.TimeS*1000)
	for p, cfg := range pol.PerPhase {
		fmt.Printf("  phase %d -> %v\n", p, cfg)
	}

	static, err := prog.StaticBinary(pol)
	if err != nil {
		log.Fatal(err)
	}
	gts, err := astro.Run(mod, astro.RunConfig{Args: args, Seed: 99, UseGTS: true})
	if err != nil {
		log.Fatal(err)
	}
	ast, err := astro.Run(static, astro.RunConfig{Args: args, Seed: 99, UseGTS: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGTS baseline:  %.3f ms, %.4f J\nAstro static:  %.3f ms, %.4f J  (%+.1f%% time, %+.1f%% energy)\n",
		gts.TimeS*1000, gts.EnergyJ, ast.TimeS*1000, ast.EnergyJ,
		100*(ast.TimeS/gts.TimeS-1), 100*(ast.EnergyJ/gts.EnergyJ-1))
}

// Quickstart: compile a small astc program, inspect its phases the way the
// Phase-Extractor does, run it on the simulated Odroid XU4, and print the
// outcome.
package main

import (
	"fmt"
	"log"

	"astro"
)

const src = `
var data [512]float;

func fill(n int) {
	var i int;
	for (i = 0; i < n; i = i + 8) {
		data[i] = read_float();
		data[i + 1] = read_float();
		data[i + 2] = read_float();
		data[i + 3] = read_float();
		data[i + 4] = read_float();
		data[i + 5] = read_float();
		data[i + 6] = read_float();
		data[i + 7] = read_float();
	}
}

func crunch(n int) float {
	var i int;
	var acc float = 0.0;
	for (i = 0; i < n; i = i + 1) {
		acc = acc + sqrt(data[i % 512] * data[i % 512] + 1.0);
	}
	return acc;
}

func main(scale int, threads int) {
	fill(512);
	print_float(crunch(scale));
	sleep_ms(1);
}
`

func main() {
	mod, err := astro.Compile("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := astro.NewProgram(mod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("static program phases (Sec. 3.1.1):")
	for name, phase := range prog.Phases() {
		fmt.Printf("  %-8s -> %v\n", name, phase)
	}

	res, err := astro.Run(mod, astro.RunConfig{
		Args: []int64{40000, 1}, Seed: 1, UseGTS: true, CaptureOutput: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nran on %v: %.3f ms, %.4f J, %.1f MIPS, output=%v\n",
		res.FinalConfig, res.TimeS*1000, res.EnergyJ, res.MIPS(), res.Output)
}

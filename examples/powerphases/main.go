// Powerphases reproduces the Fig. 2/3 scenario: the matrix-multiplication
// program's power profile on the Jetson TK1, sampled at the JetsonLeap
// apparatus's rate, with the program's phases visible as plateaus and
// valleys.
package main

import (
	"fmt"
	"log"

	"astro/internal/experiments"
)

func main() {
	r, err := experiments.Fig3(experiments.Small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Render())
	min, max := r.PhaseRange()
	fmt.Printf("phase power spread: %.3f W (valleys) .. %.3f W (plateaus)\n", min, max)
}

// Paretosweep explores the Fig. 1 scenario: run one benchmark across every
// hardware configuration of the Odroid XU4 and print the energy/time
// frontier, showing that the best-time, best-energy and best-EDP
// configurations differ.
package main

import (
	"fmt"
	"log"
	"os"

	"astro"
	"astro/internal/tablefmt"
)

func main() {
	bench := "streamcluster"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	mod, args, err := astro.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	plat := astro.OdroidXU4()
	tb := tablefmt.NewTable("config", "time (ms)", "energy (J)", "EDP")
	bestT, bestE := astro.Config{}, astro.Config{}
	var tMin, eMin float64
	for _, cfg := range plat.Configs() {
		res, err := astro.Run(mod, astro.RunConfig{Args: args, Seed: 3, InitialConfig: cfg, UseGTS: true})
		if err != nil {
			log.Fatalf("%v: %v", cfg, err)
		}
		tb.Row(cfg.String(), res.TimeS*1000, res.EnergyJ, res.EnergyJ*res.TimeS)
		if tMin == 0 || res.TimeS < tMin {
			tMin, bestT = res.TimeS, cfg
		}
		if eMin == 0 || res.EnergyJ < eMin {
			eMin, bestE = res.EnergyJ, cfg
		}
	}
	fmt.Printf("%s across %d configurations:\n%s\n", bench, plat.NumConfigs(), tb.String())
	fmt.Printf("best time: %v (%.3f ms), best energy: %v (%.4f J)\n", bestT, tMin*1000, bestE, eMin)
}

module astro

go 1.24
